//! Chunks: the unit of data flow between physical operators (a "record
//! batch" — a set of equal-length columns).

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnBuilder, ColumnRef};
use crate::error::{EngineError, Result};
use crate::schema::SchemaRef;
use crate::types::Value;

/// A horizontal slice of a table: equal-length columns.
#[derive(Debug, Clone)]
pub struct Chunk {
    columns: Vec<ColumnRef>,
    len: usize,
}

impl Chunk {
    /// Build a chunk; all columns must have equal length.
    pub fn new(columns: Vec<ColumnRef>) -> Result<Chunk> {
        let len = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            if c.len() != len {
                return Err(EngineError::internal(format!(
                    "chunk column length mismatch: {} vs {}",
                    c.len(),
                    len
                )));
            }
        }
        Ok(Chunk { columns, len })
    }

    /// A zero-column chunk that still reports `len` rows (for `COUNT(*)`
    /// over projections that need no columns).
    pub fn new_empty_columns(len: usize) -> Chunk {
        Chunk {
            columns: Vec::new(),
            len,
        }
    }

    /// An empty chunk matching `schema`.
    pub fn empty(schema: &SchemaRef) -> Chunk {
        let columns = schema
            .fields
            .iter()
            .map(|f| Arc::new(Column::empty(f.data_type)))
            .collect();
        Chunk { columns, len: 0 }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &ColumnRef {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// The scalar at (`row`, `col`).
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// One row as scalars.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(row)).collect()
    }

    /// Keep rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> Result<Chunk> {
        debug_assert_eq!(mask.len(), self.len);
        let indices = mask.set_indices();
        self.take(&indices)
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[u32]) -> Result<Chunk> {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.take(indices)))
            .collect();
        Ok(Chunk {
            columns,
            len: indices.len(),
        })
    }

    /// Keep only the columns at `indices` (cheap: `Arc` clones).
    pub fn project(&self, indices: &[usize]) -> Chunk {
        let columns = indices
            .iter()
            .map(|&i| Arc::clone(&self.columns[i]))
            .collect();
        Chunk {
            columns,
            len: self.len,
        }
    }

    /// First `n` rows.
    pub fn limit(&self, n: usize) -> Result<Chunk> {
        if n >= self.len {
            return Ok(self.clone());
        }
        let indices: Vec<u32> = (0..n as u32).collect();
        self.take(&indices)
    }

    /// Vertically concatenate chunks (which must have identical layouts).
    pub fn concat(chunks: &[Chunk]) -> Result<Chunk> {
        let Some(first) = chunks.first() else {
            return Err(EngineError::internal("concat of zero chunks"));
        };
        if chunks.len() == 1 {
            return Ok(first.clone());
        }
        let mut columns = Vec::with_capacity(first.num_columns());
        for ci in 0..first.num_columns() {
            let mut acc = (*first.columns[ci]).clone();
            for chunk in &chunks[1..] {
                acc = acc.concat(&chunk.columns[ci])?;
            }
            columns.push(Arc::new(acc));
        }
        let len = chunks.iter().map(Chunk::len).sum();
        if columns.is_empty() {
            return Ok(Chunk::new_empty_columns(len));
        }
        Ok(Chunk { columns, len })
    }

    /// Build a chunk from rows of scalars, one builder per field of
    /// `schema`.
    pub fn from_rows(schema: &SchemaRef, rows: &[Vec<Value>]) -> Result<Chunk> {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        for row in rows {
            if row.len() != builders.len() {
                return Err(EngineError::internal(format!(
                    "row width {} does not match schema width {}",
                    row.len(),
                    builders.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        Chunk::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect())
    }

    /// All rows as scalars (row-major).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|r| self.row_values(r)).collect()
    }

    /// Approximate heap bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::PrimVec;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn sample_schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn sample_chunk() -> Chunk {
        Chunk::from_rows(
            &sample_schema(),
            &[
                vec![Value::Int64(1), Value::Utf8("a".into())],
                vec![Value::Int64(2), Value::Utf8("b".into())],
                vec![Value::Int64(3), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let c = sample_chunk();
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_columns(), 2);
        let rows = c.to_rows();
        assert_eq!(rows[1], vec![Value::Int64(2), Value::Utf8("b".into())]);
        assert_eq!(rows[2][1], Value::Null);
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = Arc::new(Column::Int64(PrimVec::from_values(vec![1, 2])));
        let b = Arc::new(Column::Int64(PrimVec::from_values(vec![1])));
        assert!(Chunk::new(vec![a, b]).is_err());
    }

    #[test]
    fn filter_take_project_limit() {
        let c = sample_chunk();
        let f = c.filter(&Bitmap::from_bools(&[true, false, true])).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.value_at(0, 1), Value::Int64(3));
        let t = c.take(&[2, 2, 0]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value_at(0, 0), Value::Int64(3));
        let p = c.project(&[1]);
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.value_at(0, 0), Value::Utf8("a".into()));
        let l = c.limit(2).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(c.limit(100).unwrap().len(), 3);
    }

    #[test]
    fn concat_chunks() {
        let a = sample_chunk();
        let b = sample_chunk();
        let c = Chunk::concat(&[a, b]).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.value_at(0, 3), Value::Int64(1));
    }

    #[test]
    fn zero_column_chunk_counts_rows() {
        let c = Chunk::new_empty_columns(42);
        assert_eq!(c.len(), 42);
        assert_eq!(c.num_columns(), 0);
        let cc =
            Chunk::concat(&[Chunk::new_empty_columns(1), Chunk::new_empty_columns(2)]).unwrap();
        assert_eq!(cc.len(), 3);
    }

    #[test]
    fn from_rows_width_mismatch() {
        let res = Chunk::from_rows(&sample_schema(), &[vec![Value::Int64(1)]]);
        assert!(res.is_err());
    }
}
