//! Table sources and the session catalog.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::chunk::Chunk;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::query::QueryContext;
use crate::schema::SchemaRef;
use crate::types::Value;

/// Iterator of chunks produced by one partition of a source or operator.
pub type ChunkIter = Box<dyn Iterator<Item = Result<Chunk>> + Send>;

/// Coarse statistics used for planning (broadcast-join decisions).
#[derive(Debug, Clone, Copy, Default)]
pub struct Statistics {
    /// Estimated number of rows, if known.
    pub row_count: Option<usize>,
    /// Estimated total bytes, if known.
    pub byte_size: Option<usize>,
}

/// A table that can be scanned partition-by-partition.
///
/// This is the extension seam the Indexed DataFrame plugs into: its
/// `IndexedSource` implements this trait, advertises filter pushdown for
/// equality predicates on the indexed column, and is recognized (via
/// [`TableSource::as_any`] downcasting) by the index-aware planning
/// strategy — the analogue of the paper's custom Catalyst rules.
pub trait TableSource: Send + Sync {
    /// The table's schema (unqualified).
    fn schema(&self) -> SchemaRef;

    /// Number of scan partitions.
    fn num_partitions(&self) -> usize;

    /// Scan one partition, optionally projecting a subset of columns
    /// (indices into [`TableSource::schema`]).
    fn scan(&self, partition: usize, projection: Option<&[usize]>) -> Result<ChunkIter>;

    /// Whether the source can evaluate `filter` natively during the scan
    /// (e.g. an index lookup). Sources returning `true` must apply the
    /// filter in [`TableSource::scan_with_filters`].
    fn supports_filter_pushdown(&self, _filter: &Expr) -> bool {
        false
    }

    /// Scan with pushed-down filters. Only called with filters for which
    /// [`TableSource::supports_filter_pushdown`] returned `true`.
    fn scan_with_filters(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        _filters: &[Expr],
    ) -> Result<ChunkIter> {
        self.scan(partition, projection)
    }

    /// Scan one partition under a query lifecycle token. Sources that run
    /// long per-partition work (index probes, large decodes) should
    /// override this to check `query` for cancellation between units of
    /// work and charge it for materialized buffers; the default ignores
    /// `query` and delegates to the plain scan methods (per-chunk
    /// lifecycle checks still apply via the operator wrapper).
    fn scan_with_ctx(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Expr],
        query: &Arc<QueryContext>,
    ) -> Result<ChunkIter> {
        let _ = query;
        if filters.is_empty() {
            self.scan(partition, projection)
        } else {
            self.scan_with_filters(partition, projection, filters)
        }
    }

    /// Planning statistics.
    fn statistics(&self) -> Statistics {
        Statistics::default()
    }

    /// Append rows to this source (SQL `INSERT`). Sources default to
    /// read-only; updatable sources (the engine's [`AppendTable`], the
    /// Indexed DataFrame's live source) override this. Implementations
    /// must validate row width and value types against
    /// [`TableSource::schema`] and return the number of rows appended.
    fn append_rows(&self, rows: &[Vec<Value>]) -> Result<usize> {
        let _ = rows;
        Err(EngineError::Unsupported(
            "this table source does not support INSERT".to_string(),
        ))
    }

    /// Apply one DML statement (SQL `UPDATE`/`DELETE`): remove the rows in
    /// `deletes` (by value identity — the executor hands back exactly the
    /// rows its bound scan matched) and add the rows in `inserts` (an
    /// `UPDATE`'s new images; empty for a plain `DELETE`). Returns the
    /// number of rows that matched — the statement's rows-affected count.
    ///
    /// Sources default to read-only. A delete row no longer present (a
    /// concurrent statement removed it first) is skipped, not an error.
    fn apply_dml(&self, deletes: &[Vec<Value>], inserts: &[Vec<Value>]) -> Result<usize> {
        let _ = (deletes, inserts);
        Err(EngineError::Unsupported(
            "this table source does not support UPDATE/DELETE".to_string(),
        ))
    }

    /// Downcast support for custom planning strategies.
    fn as_any(&self) -> &dyn Any;
}

/// An in-memory, partitioned, columnar table — the engine's analogue of a
/// cached (vanilla) Spark DataFrame.
pub struct MemTable {
    schema: SchemaRef,
    partitions: Vec<Vec<Chunk>>,
}

impl MemTable {
    /// Build from pre-partitioned chunks.
    pub fn new(schema: SchemaRef, partitions: Vec<Vec<Chunk>>) -> Self {
        MemTable { schema, partitions }
    }

    /// Build a single-partition table from one chunk.
    pub fn from_chunk(schema: SchemaRef, chunk: Chunk) -> Self {
        MemTable {
            schema,
            partitions: vec![vec![chunk]],
        }
    }

    /// Split `chunk` round-robin into `n` partitions.
    pub fn from_chunk_partitioned(schema: SchemaRef, chunk: Chunk, n: usize) -> Result<Self> {
        let n = n.max(1);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for row in 0..chunk.len() {
            buckets[row % n].push(row as u32);
        }
        let partitions = buckets
            .into_iter()
            .map(|idx| Ok(vec![chunk.take(&idx)?]))
            .collect::<Result<Vec<_>>>()?;
        Ok(MemTable { schema, partitions })
    }

    /// The chunks of every partition.
    pub fn partitions(&self) -> &[Vec<Chunk>] {
        &self.partitions
    }

    /// Total rows across partitions.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().flatten().map(Chunk::len).sum()
    }
}

impl TableSource for MemTable {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len().max(1)
    }

    fn scan(&self, partition: usize, projection: Option<&[usize]>) -> Result<ChunkIter> {
        let chunks = self.partitions.get(partition).cloned().unwrap_or_default();
        let projected: Vec<Chunk> = match projection {
            Some(idx) => {
                let idx = idx.to_vec();
                chunks.iter().map(|c| c.project(&idx)).collect()
            }
            None => chunks,
        };
        Ok(Box::new(projected.into_iter().map(Ok)))
    }

    fn statistics(&self) -> Statistics {
        let rows = self.row_count();
        let bytes = self.partitions.iter().flatten().map(Chunk::byte_size).sum();
        Statistics {
            row_count: Some(rows),
            byte_size: Some(bytes),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Validate `rows` against `schema` for an append: exact width, and every
/// value either NULL or of the column's type. Shared by every
/// [`TableSource::append_rows`] implementation so INSERT has one
/// type-checking contract.
pub fn check_append_rows(schema: &SchemaRef, rows: &[Vec<Value>]) -> Result<()> {
    for row in rows {
        if row.len() != schema.len() {
            return Err(EngineError::type_err(format!(
                "INSERT row has {} values; table has {} columns",
                row.len(),
                schema.len()
            )));
        }
        for (value, field) in row.iter().zip(&schema.fields) {
            match value.data_type() {
                None => {}
                Some(dt) if dt == field.data_type => {}
                Some(dt) => {
                    return Err(EngineError::type_err(format!(
                        "INSERT value {value} has type {dt}; column {} is {}",
                        field.name, field.data_type
                    )));
                }
            }
        }
    }
    Ok(())
}

/// An appendable in-memory table: the engine's default backing for SQL
/// `CREATE TABLE` when no [`crate::session::TableFactory`] is installed.
/// Appends take a short write lock; scans clone the chunk list under a
/// read lock, so readers in flight keep the rows they saw (appends are
/// only ever additive).
pub struct AppendTable {
    schema: SchemaRef,
    chunks: RwLock<Vec<Chunk>>,
}

impl AppendTable {
    /// An empty appendable table with `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        AppendTable {
            schema,
            chunks: RwLock::new(Vec::new()),
        }
    }

    /// Total rows currently stored.
    pub fn row_count(&self) -> usize {
        self.chunks.read().iter().map(Chunk::len).sum()
    }
}

impl TableSource for AppendTable {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn num_partitions(&self) -> usize {
        1
    }

    fn scan(&self, partition: usize, projection: Option<&[usize]>) -> Result<ChunkIter> {
        let chunks: Vec<Chunk> = if partition == 0 {
            self.chunks.read().clone()
        } else {
            Vec::new()
        };
        let projected: Vec<Chunk> = match projection {
            Some(idx) => {
                let idx = idx.to_vec();
                chunks.iter().map(|c| c.project(&idx)).collect()
            }
            None => chunks,
        };
        Ok(Box::new(projected.into_iter().map(Ok)))
    }

    fn statistics(&self) -> Statistics {
        let chunks = self.chunks.read();
        Statistics {
            row_count: Some(chunks.iter().map(Chunk::len).sum()),
            byte_size: Some(chunks.iter().map(Chunk::byte_size).sum()),
        }
    }

    fn append_rows(&self, rows: &[Vec<Value>]) -> Result<usize> {
        check_append_rows(&self.schema, rows)?;
        let chunk = Chunk::from_rows(&self.schema, rows)?;
        self.chunks.write().push(chunk);
        Ok(rows.len())
    }

    fn apply_dml(&self, deletes: &[Vec<Value>], inserts: &[Vec<Value>]) -> Result<usize> {
        check_append_rows(&self.schema, deletes)?;
        check_append_rows(&self.schema, inserts)?;
        // One write lock for the whole statement keeps it atomic: readers
        // see either all of it or none of it.
        let mut chunks = self.chunks.write();
        let mut pending: Vec<&Vec<Value>> = deletes.iter().collect();
        let mut kept: Vec<Vec<Value>> = Vec::new();
        for chunk in chunks.iter() {
            for r in 0..chunk.len() {
                let row = chunk.row_values(r);
                match pending.iter().position(|d| **d == row) {
                    Some(i) => {
                        pending.swap_remove(i);
                    }
                    None => kept.push(row),
                }
            }
        }
        let matched = deletes.len() - pending.len();
        kept.extend(inserts.iter().cloned());
        let rebuilt = if kept.is_empty() {
            Vec::new()
        } else {
            vec![Chunk::from_rows(&self.schema, &kept)?]
        };
        *chunks = rebuilt;
        Ok(matched)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The session's table registry.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<dyn TableSource>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under `name`.
    pub fn register(&self, name: impl Into<String>, table: Arc<dyn TableSource>) {
        self.tables.write().insert(name.into(), table);
    }

    /// Register a table under `name` only if the name is free, atomically:
    /// the vacancy check and the insert happen under one write lock, so of
    /// two racing registrations exactly one wins and the loser gets a
    /// typed [`EngineError::TableAlreadyExists`] — the winner's source is
    /// never silently replaced (the DDL path; contrast
    /// [`Catalog::register`], which replaces).
    pub fn register_new(&self, name: impl Into<String>, table: Arc<dyn TableSource>) -> Result<()> {
        let name = name.into();
        match self.tables.write().entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(EngineError::TableAlreadyExists(name))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(table);
                Ok(())
            }
        }
    }

    /// Remove the table registered under `name`.
    pub fn deregister(&self, name: &str) -> Option<Arc<dyn TableSource>> {
        self.tables.write().remove(name)
    }

    /// Fetch the table registered under `name`.
    pub fn get(&self, name: &str) -> Result<Arc<dyn TableSource>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    fn table() -> MemTable {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let chunk = Chunk::from_rows(
            &schema,
            &(0..10).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        MemTable::from_chunk_partitioned(schema, chunk, 3).unwrap()
    }

    #[test]
    fn partitioning_covers_all_rows() {
        let t = table();
        assert_eq!(t.num_partitions(), 3);
        assert_eq!(t.row_count(), 10);
        let mut all: Vec<i64> = Vec::new();
        for p in 0..3 {
            for chunk in t.scan(p, None).unwrap() {
                let chunk = chunk.unwrap();
                for r in 0..chunk.len() {
                    if let Value::Int64(v) = chunk.value_at(0, r) {
                        all.push(v);
                    }
                }
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scan_projection() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]));
        let chunk =
            Chunk::from_rows(&schema, &[vec![Value::Int64(1), Value::Utf8("x".into())]]).unwrap();
        let t = MemTable::from_chunk(schema, chunk);
        let got: Vec<Chunk> = t
            .scan(0, Some(&[1]))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(got[0].num_columns(), 1);
        assert_eq!(got[0].value_at(0, 0), Value::Utf8("x".into()));
    }

    #[test]
    fn catalog_register_lookup() {
        let c = Catalog::new();
        assert!(c.get("t").is_err());
        c.register("t", Arc::new(table()));
        assert!(c.get("t").is_ok());
        assert_eq!(c.table_names(), vec!["t"]);
        c.deregister("t");
        assert!(c.get("t").is_err());
    }

    #[test]
    fn register_new_is_first_writer_wins() {
        let c = Catalog::new();
        c.register_new("t", Arc::new(table())).unwrap();
        let err = c.register_new("t", Arc::new(table())).unwrap_err();
        assert_eq!(err, EngineError::TableAlreadyExists("t".into()));
        // Plain register still replaces.
        c.register("t", Arc::new(table()));
        assert!(c.get("t").is_ok());
    }

    #[test]
    fn append_table_appends_and_scans() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        let t = AppendTable::new(Arc::clone(&schema));
        assert_eq!(t.row_count(), 0);
        let n = t
            .append_rows(&[
                vec![Value::Int64(1), Value::Utf8("a".into())],
                vec![Value::Int64(2), Value::Null],
            ])
            .unwrap();
        assert_eq!(n, 2);
        t.append_rows(&[vec![Value::Int64(3), Value::Utf8("c".into())]])
            .unwrap();
        assert_eq!(t.row_count(), 3);
        let chunks: Vec<Chunk> = t.scan(0, None).unwrap().collect::<Result<_>>().unwrap();
        assert_eq!(chunks.iter().map(Chunk::len).sum::<usize>(), 3);
        // Projection works and off-range partitions are empty.
        let projected: Vec<Chunk> = t
            .scan(0, Some(&[1]))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(projected[0].num_columns(), 1);
        assert_eq!(t.scan(1, None).unwrap().count(), 0);
        assert_eq!(t.statistics().row_count, Some(3));
    }

    #[test]
    fn append_table_rejects_bad_rows() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64)]));
        let t = AppendTable::new(Arc::clone(&schema));
        // Wrong arity.
        let err = t
            .append_rows(&[vec![Value::Int64(1), Value::Int64(2)]])
            .unwrap_err();
        assert!(matches!(err, EngineError::Type(_)), "got {err:?}");
        // Wrong type.
        let err = t.append_rows(&[vec![Value::Utf8("x".into())]]).unwrap_err();
        assert!(matches!(err, EngineError::Type(_)), "got {err:?}");
        // Nothing was appended by the failed calls.
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn memtable_is_read_only() {
        let t = table();
        let err = t.append_rows(&[vec![Value::Int64(1)]]).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "got {err:?}");
        let err = t.apply_dml(&[vec![Value::Int64(1)]], &[]).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "got {err:?}");
    }

    #[test]
    fn append_table_dml_deletes_and_updates() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64)]));
        let t = AppendTable::new(Arc::clone(&schema));
        t.append_rows(&(0..5).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>())
            .unwrap();
        // Plain delete; a miss does not count toward rows-affected.
        let n = t
            .apply_dml(&[vec![Value::Int64(3)], vec![Value::Int64(99)]], &[])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.row_count(), 4);
        // Update = delete old image + insert new image.
        let n = t
            .apply_dml(&[vec![Value::Int64(0)]], &[vec![Value::Int64(100)]])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.row_count(), 4);
        let chunks: Vec<Chunk> = t.scan(0, None).unwrap().collect::<Result<_>>().unwrap();
        let mut all: Vec<Value> = chunks
            .iter()
            .flat_map(|c| (0..c.len()).map(|r| c.value_at(0, r)))
            .collect();
        all.sort();
        assert_eq!(
            all,
            [1i64, 2, 4, 100].map(Value::Int64).to_vec(),
            "3 gone, 0 became 100"
        );
        // Duplicate rows: each delete row consumes one copy.
        t.append_rows(&[vec![Value::Int64(1)]]).unwrap();
        assert_eq!(t.apply_dml(&[vec![Value::Int64(1)]], &[]).unwrap(), 1);
        let total: usize = t.scan(0, None).unwrap().map(|c| c.unwrap().len()).sum();
        assert_eq!(total, 4, "one of the two copies survives");
        // Type errors are typed.
        assert!(t.apply_dml(&[vec![Value::Utf8("x".into())]], &[]).is_err());
    }

    #[test]
    fn statistics_populated() {
        let t = table();
        let s = t.statistics();
        assert_eq!(s.row_count, Some(10));
        assert!(s.byte_size.unwrap() >= 80);
    }
}
