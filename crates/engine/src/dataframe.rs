//! The lazy DataFrame API.
//!
//! Mirrors Spark's DataFrame: transformations build a logical plan eagerly
//! *analyzed* (columns resolved, types coerced) but lazily *executed* —
//! `collect`/`count`/`show` trigger optimization, physical planning, and
//! parallel execution.

use std::sync::Arc;

use crate::analyzer::{expr_to_field, expr_type, resolve_expr};
use crate::catalog::MemTable;
use crate::chunk::Chunk;
use crate::error::{EngineError, Result};
use crate::expr::{Expr, SortExpr};
use crate::logical::{JoinType, LogicalPlan};
use crate::physical::{
    display_exec, execute_collect, execute_collect_partitions, ExecPlanRef, MetricsRegistry,
    TaskContext,
};
use crate::schema::{Schema, SchemaRef};
use crate::session::Session;
use crate::types::DataType;

/// A lazily evaluated, schema-checked relational query.
#[derive(Clone)]
pub struct DataFrame {
    session: Session,
    plan: Arc<LogicalPlan>,
    /// Original SQL text when the frame came from `Session::sql` — used
    /// to label the slow-query log.
    sql: Option<Arc<str>>,
}

impl DataFrame {
    /// Wrap a logical plan (used by [`Session`] and library extensions).
    pub fn new(session: Session, plan: LogicalPlan) -> Self {
        DataFrame {
            session,
            plan: Arc::new(plan),
            sql: None,
        }
    }

    /// Attach the originating SQL text (used by the SQL front end so the
    /// slow-query log shows queries as written).
    pub fn with_sql_text(mut self, sql: &str) -> Self {
        self.sql = Some(Arc::from(sql));
        self
    }

    /// Label identifying this query in the slow-query log: the SQL text
    /// when known, else the root line of the logical plan.
    fn query_label(&self) -> String {
        match &self.sql {
            Some(sql) => sql.to_string(),
            None => self
                .plan
                .display_indent()
                .lines()
                .next()
                .unwrap_or("<empty plan>")
                .trim()
                .to_string(),
        }
    }

    /// The output schema.
    pub fn schema(&self) -> SchemaRef {
        self.plan.schema()
    }

    /// The underlying (analyzed, unoptimized) logical plan.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The session this frame belongs to.
    pub fn session(&self) -> &Session {
        &self.session
    }

    // ------------------------------------------------------------------
    // Transformations
    // ------------------------------------------------------------------

    /// Keep rows satisfying `predicate`.
    pub fn filter(&self, predicate: Expr) -> Result<DataFrame> {
        let schema = self.schema();
        let predicate = resolve_expr(&predicate, &schema)?;
        if expr_type(&predicate, &schema)? != DataType::Boolean {
            return Err(EngineError::type_err("filter predicate must be BOOLEAN"));
        }
        Ok(self.with_plan(LogicalPlan::Filter {
            input: Arc::clone(&self.plan),
            predicate,
        }))
    }

    /// Project/compute columns.
    pub fn select(&self, exprs: Vec<Expr>) -> Result<DataFrame> {
        let in_schema = self.schema();
        let exprs = exprs
            .iter()
            .map(|e| resolve_expr(e, &in_schema))
            .collect::<Result<Vec<_>>>()?;
        if let Some(agg) = exprs.iter().find(|e| e.has_aggregate()) {
            return Err(EngineError::plan(format!(
                "aggregate {agg} in select; use aggregate() / GROUP BY"
            )));
        }
        let fields = exprs
            .iter()
            .map(|e| expr_to_field(e, &in_schema))
            .collect::<Result<Vec<_>>>()?;
        let schema = Arc::new(Schema::new(fields));
        Ok(self.with_plan(LogicalPlan::Projection {
            input: Arc::clone(&self.plan),
            exprs,
            schema,
        }))
    }

    /// Project columns by name.
    pub fn select_columns(&self, names: &[&str]) -> Result<DataFrame> {
        self.select(names.iter().map(|n| crate::expr::col(n)).collect())
    }

    /// Append a computed column.
    pub fn with_column(&self, name: &str, expr: Expr) -> Result<DataFrame> {
        let mut exprs: Vec<Expr> = self
            .schema()
            .fields
            .iter()
            .map(|f| crate::expr::col(&f.qualified_name()))
            .collect();
        exprs.push(expr.alias(name));
        self.select(exprs)
    }

    /// Equi-join with `right` on `(left_col, right_col)` name pairs.
    pub fn join(
        &self,
        right: &DataFrame,
        on: Vec<(&str, &str)>,
        join_type: JoinType,
    ) -> Result<DataFrame> {
        let pairs = on
            .into_iter()
            .map(|(l, r)| (crate::expr::col(l), crate::expr::col(r)))
            .collect();
        self.join_on(right, pairs, join_type)
    }

    /// Equi-join with `right` on expression pairs.
    pub fn join_on(
        &self,
        right: &DataFrame,
        on: Vec<(Expr, Expr)>,
        join_type: JoinType,
    ) -> Result<DataFrame> {
        let ls = self.schema();
        let rs = right.schema();
        let on = on
            .into_iter()
            .map(|(l, r)| {
                let l = resolve_expr(&l, &ls)?;
                let r = resolve_expr(&r, &rs)?;
                let lt = expr_type(&l, &ls)?;
                let rt = expr_type(&r, &rs)?;
                if lt != rt {
                    return Err(EngineError::type_err(format!(
                        "join key type mismatch: {lt} vs {rt}"
                    )));
                }
                Ok((l, r))
            })
            .collect::<Result<Vec<_>>>()?;
        let schema = match join_type {
            JoinType::Inner | JoinType::Left => Arc::new(ls.join(&rs)),
            JoinType::Semi | JoinType::Anti => ls,
        };
        Ok(self.with_plan(LogicalPlan::Join {
            left: Arc::clone(&self.plan),
            right: Arc::clone(&right.plan),
            on,
            join_type,
            schema,
        }))
    }

    /// Grouped aggregation: output columns are the group keys then the
    /// aggregates.
    pub fn aggregate(&self, group: Vec<Expr>, aggs: Vec<Expr>) -> Result<DataFrame> {
        let in_schema = self.schema();
        let group = group
            .iter()
            .map(|e| resolve_expr(e, &in_schema))
            .collect::<Result<Vec<_>>>()?;
        let aggs = aggs
            .iter()
            .map(|e| resolve_expr(e, &in_schema))
            .collect::<Result<Vec<_>>>()?;
        for a in &aggs {
            if !a.has_aggregate() {
                return Err(EngineError::plan(format!(
                    "aggregate list entry {a} is not an aggregate call"
                )));
            }
        }
        let mut fields = Vec::with_capacity(group.len() + aggs.len());
        for e in group.iter().chain(&aggs) {
            fields.push(expr_to_field(e, &in_schema)?);
        }
        let schema = Arc::new(Schema::new(fields));
        Ok(self.with_plan(LogicalPlan::Aggregate {
            input: Arc::clone(&self.plan),
            group_exprs: group,
            agg_exprs: aggs,
            schema,
        }))
    }

    /// Sort by `keys`.
    pub fn sort(&self, keys: Vec<SortExpr>) -> Result<DataFrame> {
        let in_schema = self.schema();
        let exprs = keys
            .into_iter()
            .map(|k| {
                Ok(SortExpr {
                    expr: resolve_expr(&k.expr, &in_schema)?,
                    ascending: k.ascending,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(self.with_plan(LogicalPlan::Sort {
            input: Arc::clone(&self.plan),
            exprs,
        }))
    }

    /// Deduplicate rows (SELECT DISTINCT): a grouped aggregation on every
    /// column with no aggregate outputs.
    pub fn distinct(&self) -> Result<DataFrame> {
        let schema = self.schema();
        let group: Vec<Expr> = schema
            .fields
            .iter()
            .map(|f| crate::expr::col(&f.qualified_name()))
            .collect();
        let group = group
            .iter()
            .map(|e| resolve_expr(e, &schema))
            .collect::<Result<Vec<_>>>()?;
        Ok(self.with_plan(LogicalPlan::Aggregate {
            input: Arc::clone(&self.plan),
            group_exprs: group,
            agg_exprs: vec![],
            schema,
        }))
    }

    /// Keep at most `n` rows.
    pub fn limit(&self, n: usize) -> DataFrame {
        self.with_plan(LogicalPlan::Limit {
            input: Arc::clone(&self.plan),
            n,
        })
    }

    /// Bag union with another frame of identical column types.
    pub fn union(&self, other: &DataFrame) -> Result<DataFrame> {
        let a = self.schema();
        let b = other.schema();
        if a.fields.len() != b.fields.len()
            || a.fields
                .iter()
                .zip(&b.fields)
                .any(|(x, y)| x.data_type != y.data_type)
        {
            return Err(EngineError::type_err(format!(
                "union requires matching column types: {a} vs {b}"
            )));
        }
        Ok(self.with_plan(LogicalPlan::Union {
            inputs: vec![Arc::clone(&self.plan), Arc::clone(&other.plan)],
            schema: a,
        }))
    }

    /// Re-qualify every output column as `alias` (enables self-joins:
    /// `df.alias("k1").join(df.alias("k2"), ...)`).
    pub fn alias(&self, alias: &str) -> DataFrame {
        let old = self.schema();
        let schema = Arc::new(old.qualified(alias));
        // Identity projection carrying the new qualifiers.
        let exprs = (0..old.len())
            .map(|i| {
                Expr::Column(crate::expr::ColumnRefExpr {
                    qualifier: old.field(i).qualifier.clone(),
                    name: old.field(i).name.clone(),
                    index: Some(i),
                })
            })
            .collect();
        self.with_plan(LogicalPlan::Projection {
            input: Arc::clone(&self.plan),
            exprs,
            schema,
        })
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Optimize + plan + execute, concatenating all partitions. Runs
    /// under a fresh query context carrying the session's configured
    /// memory limits (no deadline).
    pub fn collect(&self) -> Result<Chunk> {
        self.collect_ctx(&self.session.new_query())
    }

    /// Like [`DataFrame::collect`], but under an explicit query lifecycle
    /// token: cancel it from another thread (`query.cancel()`) to stop
    /// the query with `EngineError::Cancelled` within a bounded latency.
    pub fn collect_ctx(&self, query: &Arc<crate::query::QueryContext>) -> Result<Chunk> {
        let exec = self.physical_plan()?;
        // Anchor any timeout now that planning is done: the client's
        // timeout buys execution time (see `QueryContext` deadline
        // contract), not optimizer time.
        query.arm_deadline();
        let ctx = TaskContext::with_query(self.session.config().clone(), Arc::clone(query));
        self.track_query(query, || execute_collect(&exec, &ctx))
    }

    /// Like [`DataFrame::collect`], but stops with
    /// `EngineError::DeadlineExceeded` if execution runs past `timeout`.
    pub fn collect_timeout(&self, timeout: std::time::Duration) -> Result<Chunk> {
        self.collect_ctx(&self.session.new_query_with_timeout(timeout))
    }

    /// Optimize + plan + execute, keeping partition boundaries.
    pub fn collect_partitions(&self) -> Result<Vec<Vec<Chunk>>> {
        self.collect_partitions_ctx(&self.session.new_query())
    }

    /// Like [`DataFrame::collect_partitions`], under an explicit query
    /// lifecycle token.
    pub fn collect_partitions_ctx(
        &self,
        query: &Arc<crate::query::QueryContext>,
    ) -> Result<Vec<Vec<Chunk>>> {
        let exec = self.physical_plan()?;
        query.arm_deadline();
        let ctx = TaskContext::with_query(self.session.config().clone(), Arc::clone(query));
        self.track_query(query, || execute_collect_partitions(&exec, &ctx))
    }

    /// Run `run` with query-lifecycle accounting: started/finished/
    /// cancelled/failed counters, the end-to-end latency histogram, the
    /// peak-memory high-water mark, and — past the configured threshold —
    /// a slow-query log entry. Compiles to a plain `run()` call when the
    /// `obs` feature is off.
    fn track_query<T>(
        &self,
        query: &Arc<crate::query::QueryContext>,
        run: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        if !idf_obs::enabled() {
            return run();
        }
        let m = idf_obs::global();
        m.queries_started.inc();
        m.queries_in_flight.add(1);
        let start = std::time::Instant::now();
        let result = run();
        let elapsed = start.elapsed();
        m.queries_in_flight.sub(1);
        m.query_latency_ns.record(elapsed.as_nanos() as u64);
        m.query_peak_memory_bytes
            .set_max(query.memory_peak() as i64);
        let outcome = match &result {
            Ok(_) => idf_obs::QueryOutcome::Finished,
            Err(e) if e.is_cancellation() => idf_obs::QueryOutcome::Cancelled,
            Err(_) => idf_obs::QueryOutcome::Failed,
        };
        match outcome {
            idf_obs::QueryOutcome::Finished => m.queries_finished.inc(),
            idf_obs::QueryOutcome::Cancelled => m.queries_cancelled.inc(),
            idf_obs::QueryOutcome::Failed => m.queries_failed.inc(),
        }
        if let Some(threshold) = self.session.config().slow_query_threshold {
            if elapsed >= threshold {
                m.slow_queries
                    .push(self.query_label(), elapsed.as_nanos() as u64, outcome);
            }
        }
        result
    }

    /// Number of rows the query produces.
    pub fn count(&self) -> Result<usize> {
        let parts = self.collect_partitions()?;
        Ok(parts.iter().flatten().map(Chunk::len).sum())
    }

    /// Render the first `n` rows as an ASCII table.
    pub fn show(&self, n: usize) -> Result<String> {
        let chunk = self.limit(n).collect()?;
        Ok(crate::pretty::format_chunk(&self.schema(), &chunk))
    }

    /// The optimized logical plan.
    pub fn optimized_plan(&self) -> Result<LogicalPlan> {
        self.session.optimizer().optimize(&self.plan)
    }

    /// The physical plan.
    pub fn physical_plan(&self) -> Result<crate::physical::ExecPlanRef> {
        let optimized = self.optimized_plan()?;
        self.session.planner().create_plan(&optimized)
    }

    /// Execute the query with per-operator instrumentation under a fresh
    /// query context; returns the collected result, the executed physical
    /// plan, and the per-operator metrics. This is the programmatic form
    /// of `EXPLAIN ANALYZE`.
    pub fn collect_instrumented(
        &self,
        query: &Arc<crate::query::QueryContext>,
    ) -> Result<(Chunk, ExecPlanRef, Arc<MetricsRegistry>)> {
        let exec = self.physical_plan()?;
        query.arm_deadline();
        let registry = Arc::new(MetricsRegistry::new());
        let ctx = TaskContext::with_query_metrics(
            self.session.config().clone(),
            Arc::clone(query),
            Arc::clone(&registry),
        );
        let out = self.track_query(query, || execute_collect(&exec, &ctx))?;
        Ok((out, exec, registry))
    }

    /// Execute the query with per-operator instrumentation and return the
    /// physical plan tree annotated with each operator's actual rows,
    /// chunks, bytes, and time, followed by the aggregate metrics table
    /// (`EXPLAIN ANALYZE`).
    pub fn explain_analyze(&self) -> Result<String> {
        let query = self.session.new_query();
        let plan_start = std::time::Instant::now();
        let exec = self.physical_plan()?;
        let plan_time = plan_start.elapsed();
        // Same anchor the ordinary collect path uses: the timeout starts
        // when execution starts, and the plan/exec split below shows the
        // two phases the contract separates.
        query.arm_deadline();
        let registry = Arc::new(MetricsRegistry::new());
        let ctx = TaskContext::with_query_metrics(
            self.session.config().clone(),
            Arc::clone(&query),
            Arc::clone(&registry),
        );
        let exec_start = std::time::Instant::now();
        let out = self.track_query(&query, || execute_collect(&exec, &ctx))?;
        let exec_time = exec_start.elapsed();
        Ok(format!(
            "== Physical (analyzed) ==\n{}== Metrics ({} result rows, peak memory {} bytes, \
             plan {plan_time:?}, exec {exec_time:?}) ==\n{}",
            registry.render_annotated(exec.as_ref()),
            out.len(),
            query.memory_peak(),
            registry.render(),
        ))
    }

    /// Logical, optimized, and physical plans as text.
    pub fn explain(&self) -> Result<String> {
        let optimized = self.optimized_plan()?;
        let physical = self.session.planner().create_plan(&optimized)?;
        Ok(format!(
            "== Logical ==\n{}== Optimized ==\n{}== Physical ==\n{}",
            self.plan.display_indent(),
            optimized.display_indent(),
            display_exec(physical.as_ref()),
        ))
    }

    /// Materialize the result into an in-memory (columnar) table and return
    /// a frame scanning it — the analogue of `df.cache()` for the vanilla
    /// engine. The cache is partitioned round-robin across
    /// `target_partitions`.
    pub fn cache(&self) -> Result<DataFrame> {
        let chunk = self.collect()?;
        let schema = self.schema();
        let parts = self.session.config().target_partitions;
        let table = Arc::new(MemTable::from_chunk_partitioned(
            Arc::clone(&schema),
            chunk,
            parts,
        )?);
        Ok(self.with_plan(LogicalPlan::Scan {
            table: "cached".to_string(),
            source: table,
            schema,
            projection: None,
            filters: vec![],
        }))
    }

    fn with_plan(&self, plan: LogicalPlan) -> DataFrame {
        DataFrame {
            session: self.session.clone(),
            plan: Arc::new(plan),
            // A derived frame is no longer the query the SQL text named.
            sql: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemTable;
    use crate::expr::{avg, col, count_star, lit, max, sum};
    use crate::schema::Field;
    use crate::types::Value;

    fn session() -> Session {
        let s = Session::new();
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("city", DataType::Utf8),
            Field::new("age", DataType::Int64),
        ]));
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Utf8(if i % 2 == 0 { "ams" } else { "sfo" }.into()),
                    Value::Int64(20 + i % 50),
                ]
            })
            .collect();
        let chunk = Chunk::from_rows(&schema, &rows).unwrap();
        s.register_table("people", Arc::new(MemTable::from_chunk(schema, chunk)));
        s
    }

    #[test]
    fn select_filter_pipeline() {
        let s = session();
        let out = s
            .table("people")
            .unwrap()
            .filter(col("city").eq(lit("ams")))
            .unwrap()
            .select(vec![col("id"), col("age").add(lit(1i64)).alias("age1")])
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn aggregate_group_by() {
        let s = session();
        let out = s
            .table("people")
            .unwrap()
            .aggregate(
                vec![col("city")],
                vec![
                    count_star(),
                    sum(col("age")),
                    avg(col("age")),
                    max(col("id")),
                ],
            )
            .unwrap()
            .sort(vec![SortExpr::asc(col("city"))])
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value_at(0, 0), Value::Utf8("ams".into()));
        assert_eq!(out.value_at(1, 0), Value::Int64(50));
    }

    #[test]
    fn self_join_with_alias() {
        let s = session();
        let people = s.table("people").unwrap();
        let a = people.alias("a");
        let b = people.alias("b");
        let joined = a
            .join(&b, vec![("a.id", "b.id")], JoinType::Inner)
            .unwrap()
            .select(vec![col("a.id")])
            .unwrap();
        assert_eq!(joined.count().unwrap(), 100);
    }

    #[test]
    fn sort_limit_topk() {
        let s = session();
        let out = s
            .table("people")
            .unwrap()
            .sort(vec![SortExpr::desc(col("id"))])
            .unwrap()
            .limit(3)
            .collect()
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.value_at(0, 0), Value::Int64(99));
    }

    #[test]
    fn count_and_union() {
        let s = session();
        let t = s.table("people").unwrap();
        assert_eq!(t.count().unwrap(), 100);
        let u = t.union(&t).unwrap();
        assert_eq!(u.count().unwrap(), 200);
    }

    #[test]
    fn with_column_appends() {
        let s = session();
        let df = s
            .table("people")
            .unwrap()
            .with_column("age2", col("age").mul(lit(2i64)))
            .unwrap();
        assert_eq!(df.schema().len(), 4);
        let out = df.limit(1).collect().unwrap();
        let age = out.value_at(2, 0);
        let age2 = out.value_at(3, 0);
        assert_eq!(age2, Value::Int64(age.as_i64().unwrap() * 2));
    }

    #[test]
    fn cache_roundtrip() {
        let s = session();
        let cached = s.table("people").unwrap().cache().unwrap();
        assert_eq!(cached.count().unwrap(), 100);
        let filtered = cached
            .filter(col("id").lt(lit(10i64)))
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(filtered, 10);
    }

    #[test]
    fn bad_filter_type_rejected() {
        let s = session();
        assert!(s
            .table("people")
            .unwrap()
            .filter(col("id").add(lit(1i64)))
            .is_err());
    }

    #[test]
    fn explain_analyze_reports_plan_and_exec_time() {
        let s = session();
        let df = s
            .table("people")
            .unwrap()
            .filter(col("id").lt(lit(10i64)))
            .unwrap();
        let text = df.explain_analyze().unwrap();
        assert!(text.contains("plan "), "missing plan time: {text}");
        assert!(text.contains("exec "), "missing exec time: {text}");
    }

    #[test]
    fn explain_shows_phases() {
        let s = session();
        let df = s
            .table("people")
            .unwrap()
            .filter(col("id").eq(lit(5i64)))
            .unwrap()
            .select(vec![col("city")])
            .unwrap();
        let text = df.explain().unwrap();
        assert!(text.contains("== Logical =="));
        assert!(text.contains("== Optimized =="));
        assert!(text.contains("== Physical =="));
    }
}
