//! Named fault-injection sites in the service layer.
//!
//! Same contract as the storage- and durability-layer registries
//! (`crates/core/src/failpoints.rs`, `crates/durable/src/failpoints.rs`):
//! each constant names an `idf_fail::eval` site, every constant is
//! registered exactly once in [`SITES`], and the wire abuse suite's chaos
//! round iterates the table asserting that a fault at any site leaves the
//! server serving and the memory governor drained back to zero.

use idf_engine::error::{EngineError, Result};

/// A freshly accepted connection, before its reader thread is spawned: a
/// fault here drops the connection on the floor — the client sees EOF,
/// the server keeps accepting.
pub const ACCEPT: &str = "serve::accept";

/// Head of every response-frame write: a fault here abandons the rest of
/// the response stream and closes the connection, exactly as a transport
/// failure would — in-flight accounting and governor bytes must still
/// unwind to zero.
pub const WRITE_FRAME: &str = "serve::write_frame";

/// Every registered service-layer site, for chaos suites to iterate.
pub const SITES: &[&str] = &[ACCEPT, WRITE_FRAME];

/// Evaluate the failpoint at `site`, mapping an injected fault into a
/// typed execution error that names the site.
#[inline]
pub fn check(site: &str) -> Result<()> {
    idf_fail::eval(site)
        .map_err(|msg| EngineError::exec(format!("injected failure at {site}: {msg}")))
}
