//! The binary wire protocol.
//!
//! Everything on the socket is a *frame* in the WAL's torn-write format —
//! `u32 body_len | u32 crc32(body) | body`, little-endian — built on the
//! shared codec in `idf_durable::codec`. The first body byte is a message
//! tag; the rest is tag-specific.
//!
//! Requests (client → server):
//!
//! | tag | message | payload |
//! |-----|---------|---------|
//! | 1   | `Query` | tenant string, SQL string |
//!
//! Responses (server → client), streamed per query as
//! `Schema, Rows*, End` on success or a single `Error` on failure:
//!
//! | tag | message  | payload |
//! |-----|----------|---------|
//! | 2   | `Schema` | field count, then name/dtype/nullable per field |
//! | 3   | `Rows`   | row count, column count, values row-major |
//! | 4   | `End`    | total row count (u64) |
//! | 5   | `Error`  | [`ErrorCode`] (u16), message string |
//!
//! A decoder that sees a bad tag, a truncated payload, or trailing bytes
//! returns a typed [`EngineError::Corrupt`] — the peer closes the
//! connection, it never resynchronizes inside a stream. Oversized length
//! prefixes are rejected *before* any allocation (mirroring
//! `codec::check_frame_len`), so a hostile header cannot balloon memory.

use std::io::{Read, Write};

use idf_durable::codec::{self, Cursor};
use idf_durable::crc::crc32;
use idf_engine::error::{EngineError, Result};
use idf_engine::schema::Schema;
use idf_engine::types::{DataType, Value};

/// Hard cap on the SQL text carried by one [`Request::Query`], enforced
/// symmetrically (client refuses to send more, server refuses to accept
/// more with a typed [`ErrorCode::SqlTooLarge`]). Keeps a hostile or
/// runaway client from parking multi-megabyte statements in the server's
/// request path and slow-query log.
pub const MAX_SQL_BYTES: usize = 1 << 20;

/// Cap on a request frame body: the SQL cap plus room for the tag,
/// tenant string, and length prefixes.
pub const MAX_REQUEST_FRAME: usize = MAX_SQL_BYTES + 4096;

/// Cap on a response frame body. The server slices results into
/// [`ROWS_PER_FRAME`]-row frames, so this bounds one slice, not a result.
pub const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Rows per `Rows` frame in a streamed result.
pub const ROWS_PER_FRAME: usize = 1024;

const TAG_QUERY: u8 = 1;
const TAG_SCHEMA: u8 = 2;
const TAG_ROWS: u8 = 3;
const TAG_END: u8 = 4;
const TAG_ERROR: u8 = 5;

/// Typed rejection and failure codes carried by `Error` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Admission control rejected the query: the queue is at depth, or
    /// the memory governor stayed saturated past the admission wait.
    ServerBusy = 1,
    /// The server is draining and accepts no new queries.
    ShuttingDown = 2,
    /// The tenant is at its in-flight query quota.
    QuotaExceeded = 3,
    /// The SQL text exceeds [`MAX_SQL_BYTES`].
    SqlTooLarge = 4,
    /// The request was well-framed but malformed (bad tag, bad payload).
    BadRequest = 5,
    /// The query was cancelled (drain deadline, explicit cancel).
    Cancelled = 6,
    /// The query ran past its deadline.
    DeadlineExceeded = 7,
    /// A memory budget was exceeded while executing.
    ResourceExhausted = 8,
    /// `CREATE TABLE` lost an atomic-registration race.
    TableAlreadyExists = 9,
    /// Any other engine error (parse, bind, type, execution).
    QueryFailed = 10,
    /// The target table is degraded to read-only (its WAL was poisoned
    /// by an I/O fault); reads still serve, writes need `resume_writes`.
    ReadOnly = 11,
    /// A durability operation (WAL append, checkpoint, recovery) failed.
    Durability = 12,
    /// On-disk state failed validation (CRC mismatch, broken segment
    /// chain, bad manifest).
    Corrupt = 13,
    /// `DROP`/`REFRESH MATERIALIZED VIEW` named a view that does not
    /// exist.
    UnknownView = 14,
    /// `CREATE MATERIALIZED VIEW` named an already-registered view.
    ViewAlreadyExists = 15,
}

impl ErrorCode {
    /// Decode a wire code.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::ServerBusy,
            2 => ErrorCode::ShuttingDown,
            3 => ErrorCode::QuotaExceeded,
            4 => ErrorCode::SqlTooLarge,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Cancelled,
            7 => ErrorCode::DeadlineExceeded,
            8 => ErrorCode::ResourceExhausted,
            9 => ErrorCode::TableAlreadyExists,
            10 => ErrorCode::QueryFailed,
            11 => ErrorCode::ReadOnly,
            12 => ErrorCode::Durability,
            13 => ErrorCode::Corrupt,
            14 => ErrorCode::UnknownView,
            15 => ErrorCode::ViewAlreadyExists,
            _ => return None,
        })
    }

    /// The code a failing engine error maps to.
    pub fn for_engine_error(err: &EngineError) -> ErrorCode {
        match err {
            EngineError::Cancelled => ErrorCode::Cancelled,
            EngineError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            EngineError::ResourceExhausted(_) => ErrorCode::ResourceExhausted,
            EngineError::TableAlreadyExists(_) => ErrorCode::TableAlreadyExists,
            EngineError::ReadOnly(_) => ErrorCode::ReadOnly,
            EngineError::Durability(_) => ErrorCode::Durability,
            EngineError::Corrupt(_) => ErrorCode::Corrupt,
            EngineError::ViewNotFound(_) => ErrorCode::UnknownView,
            EngineError::ViewAlreadyExists(_) => ErrorCode::ViewAlreadyExists,
            _ => ErrorCode::QueryFailed,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::ServerBusy => "server busy",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::QuotaExceeded => "tenant quota exceeded",
            ErrorCode::SqlTooLarge => "SQL text too large",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::ResourceExhausted => "resource exhausted",
            ErrorCode::TableAlreadyExists => "table already exists",
            ErrorCode::QueryFailed => "query failed",
            ErrorCode::ReadOnly => "table is read-only (degraded)",
            ErrorCode::Durability => "durability failure",
            ErrorCode::Corrupt => "on-disk state corrupt",
            ErrorCode::UnknownView => "materialized view not found",
            ErrorCode::ViewAlreadyExists => "materialized view already exists",
        };
        f.write_str(name)
    }
}

/// A typed `Error` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// What went wrong, as a stable wire code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// One field of a result schema as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDesc {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

/// A decoded client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement on behalf of `tenant`.
    Query {
        /// Tenant id the query is accounted against.
        tenant: String,
        /// The SQL text.
        sql: String,
    },
}

/// A decoded server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result schema; exactly one per successful query, first.
    Schema(Vec<FieldDesc>),
    /// One slice of result rows.
    Rows(Vec<Vec<Value>>),
    /// End of a successful result stream with the total row count.
    End(u64),
    /// The query (or the request itself) failed.
    Error(ErrorFrame),
}

/// Refuse SQL text longer than [`MAX_SQL_BYTES`] with a typed error
/// (mirrors `codec::check_frame_len` — enforced at both ends of the
/// wire, so an oversized statement is never staged, sent, or retained).
pub fn check_sql_len(len: usize) -> Result<()> {
    if len > MAX_SQL_BYTES {
        return Err(EngineError::Sql(format!(
            "SQL text of {len} bytes exceeds the {MAX_SQL_BYTES}-byte wire cap"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encode a [`Request::Query`] body. Errors when `sql` is over the cap.
pub fn encode_query(tenant: &str, sql: &str) -> Result<Vec<u8>> {
    check_sql_len(sql.len())?;
    let mut out = Vec::with_capacity(9 + tenant.len() + sql.len());
    out.push(TAG_QUERY);
    codec::put_bytes(&mut out, tenant.as_bytes());
    codec::put_bytes(&mut out, sql.as_bytes());
    Ok(out)
}

/// Encode a `Schema` body.
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut out = vec![TAG_SCHEMA];
    codec::put_u32(&mut out, schema.fields.len() as u32);
    for field in &schema.fields {
        codec::put_bytes(&mut out, field.name.as_bytes());
        codec::put_data_type(&mut out, field.data_type);
        out.push(u8::from(field.nullable));
    }
    out
}

/// Encode a `Rows` body for `rows[..]`, all of width `num_columns`.
pub fn encode_rows(num_columns: usize, rows: &[Vec<Value>]) -> Vec<u8> {
    let mut out = vec![TAG_ROWS];
    codec::put_u32(&mut out, rows.len() as u32);
    codec::put_u32(&mut out, num_columns as u32);
    for row in rows {
        for value in row {
            codec::put_value(&mut out, value);
        }
    }
    out
}

/// Encode an `End` body.
pub fn encode_end(total_rows: u64) -> Vec<u8> {
    let mut out = vec![TAG_END];
    codec::put_u64(&mut out, total_rows);
    out
}

/// Encode an `Error` body.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = vec![TAG_ERROR];
    codec::put_u32(&mut out, u32::from(code as u16));
    codec::put_bytes(&mut out, message.as_bytes());
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decode a request body. Typed [`EngineError::Corrupt`] on malformed
/// input — the caller answers `BadRequest` and closes the connection.
pub fn decode_request(body: &[u8]) -> Result<Request> {
    let mut c = Cursor::new(body, "request frame");
    match c.u8()? {
        TAG_QUERY => {
            let tenant = c.string()?;
            let sql = c.string()?;
            c.expect_end()?;
            Ok(Request::Query { tenant, sql })
        }
        other => Err(EngineError::corrupt(format!(
            "request frame: unknown message tag {other}"
        ))),
    }
}

/// Decode a response body.
pub fn decode_response(body: &[u8]) -> Result<Response> {
    let mut c = Cursor::new(body, "response frame");
    let resp = match c.u8()? {
        TAG_SCHEMA => {
            let n = c.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fields.push(FieldDesc {
                    name: c.string()?,
                    data_type: c.data_type()?,
                    nullable: c.u8()? != 0,
                });
            }
            Response::Schema(fields)
        }
        TAG_ROWS => {
            let nrows = c.u32()? as usize;
            let ncols = c.u32()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(ROWS_PER_FRAME));
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    row.push(c.value()?);
                }
                rows.push(row);
            }
            Response::Rows(rows)
        }
        TAG_END => Response::End(c.u64()?),
        TAG_ERROR => {
            let raw = c.u32()?;
            let code = u16::try_from(raw)
                .ok()
                .and_then(ErrorCode::from_u16)
                .ok_or_else(|| {
                    EngineError::corrupt(format!("response frame: unknown error code {raw}"))
                })?;
            let message = c.string()?;
            Response::Error(ErrorFrame { code, message })
        }
        other => {
            return Err(EngineError::corrupt(format!(
                "response frame: unknown message tag {other}"
            )))
        }
    };
    c.expect_end()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------

/// Frame `body` and write it to `w`. The durability-flavored framing
/// errors from [`codec::frame`] cannot occur for capped bodies.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<()> {
    let framed = codec::frame(body)?;
    w.write_all(&framed)
        .map_err(|e| EngineError::exec(format!("wire write: {e}")))?;
    Ok(())
}

/// Read one frame from `r`, verifying length cap and CRC.
///
/// `Ok(None)` is a clean close (EOF on a frame boundary). Everything
/// else that is not a whole, valid frame — torn header, torn body,
/// length prefix over `max_body`, CRC mismatch — is a typed
/// [`EngineError::Corrupt`]; an I/O failure is `Execution`. The length
/// check happens before the body buffer is allocated.
pub fn read_frame(r: &mut impl Read, max_body: usize) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(EngineError::corrupt(format!(
                    "wire frame: torn header ({filled} of 8 bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(EngineError::exec(format!("wire read: {e}"))),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_body {
        return Err(EngineError::corrupt(format!(
            "wire frame: length prefix {len} exceeds the {max_body}-byte cap"
        )));
    }
    let mut body = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match r.read(&mut body[read..]) {
            Ok(0) => {
                return Err(EngineError::corrupt(format!(
                    "wire frame: torn body ({read} of {len} bytes)"
                )))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(EngineError::exec(format!("wire read: {e}"))),
        }
    }
    if crc32(&body) != crc {
        return Err(EngineError::corrupt("wire frame: CRC mismatch".to_string()));
    }
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip_and_cap() {
        let body = encode_query("acme", "SELECT 1").unwrap();
        match decode_request(&body).unwrap() {
            Request::Query { tenant, sql } => {
                assert_eq!(tenant, "acme");
                assert_eq!(sql, "SELECT 1");
            }
        }
        let big = "x".repeat(MAX_SQL_BYTES + 1);
        let err = encode_query("acme", &big).unwrap_err();
        assert!(err.to_string().contains("wire cap"), "{err}");
        check_sql_len(MAX_SQL_BYTES).unwrap();
        assert!(check_sql_len(MAX_SQL_BYTES + 1).is_err());
    }

    #[test]
    fn response_roundtrips() {
        use idf_engine::schema::Field;
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]);
        match decode_response(&encode_schema(&schema)).unwrap() {
            Response::Schema(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].name, "id");
                assert_eq!(fields[0].data_type, DataType::Int64);
                assert_eq!(fields[1].name, "name");
            }
            other => panic!("{other:?}"),
        }
        let rows = vec![
            vec![Value::Int64(1), Value::Utf8("a".into())],
            vec![Value::Null, Value::Utf8("é".into())],
        ];
        match decode_response(&encode_rows(2, &rows)).unwrap() {
            Response::Rows(got) => assert_eq!(got, rows),
            other => panic!("{other:?}"),
        }
        match decode_response(&encode_end(17)).unwrap() {
            Response::End(n) => assert_eq!(n, 17),
            other => panic!("{other:?}"),
        }
        match decode_response(&encode_error(ErrorCode::ServerBusy, "full")).unwrap() {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::ServerBusy);
                assert_eq!(e.message, "full");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[99]).is_err());
        // Trailing garbage after a valid End payload.
        let mut body = encode_end(1);
        body.push(0);
        assert!(decode_response(&body).is_err());
        // Error frame with an unknown code.
        let mut body = vec![5u8];
        idf_durable::codec::put_u32(&mut body, 9999);
        idf_durable::codec::put_bytes(&mut body, b"x");
        assert!(decode_response(&body).is_err());
    }

    #[test]
    fn stream_framing_detects_torn_and_oversized() {
        use std::io::Cursor as IoCursor;
        // Round trip.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = IoCursor::new(buf.clone());
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
        // Torn body.
        let mut torn = buf.clone();
        torn.truncate(buf.len() - 2);
        let err = read_frame(&mut IoCursor::new(torn), 1024).unwrap_err();
        assert!(err.to_string().contains("torn body"), "{err}");
        // Torn header.
        let err = read_frame(&mut IoCursor::new(vec![1u8, 2, 3]), 1024).unwrap_err();
        assert!(err.to_string().contains("torn header"), "{err}");
        // Oversized length prefix rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut IoCursor::new(huge), 1024).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // CRC mismatch.
        let mut flipped = buf;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let err = read_frame(&mut IoCursor::new(flipped), 1024).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn error_code_mapping() {
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::Cancelled),
            ErrorCode::Cancelled
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::DeadlineExceeded),
            ErrorCode::DeadlineExceeded
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::resource("x")),
            ErrorCode::ResourceExhausted
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::TableAlreadyExists("t".into())),
            ErrorCode::TableAlreadyExists
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::Sql("x".into())),
            ErrorCode::QueryFailed
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::read_only("fsync died")),
            ErrorCode::ReadOnly
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::durability("wal append")),
            ErrorCode::Durability
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::corrupt("bad crc")),
            ErrorCode::Corrupt
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::ViewNotFound("v".into())),
            ErrorCode::UnknownView
        );
        assert_eq!(
            ErrorCode::for_engine_error(&EngineError::ViewAlreadyExists("v".into())),
            ErrorCode::ViewAlreadyExists
        );
        for raw in 1..=15u16 {
            let code = ErrorCode::from_u16(raw).unwrap();
            assert_eq!(code as u16, raw);
        }
        assert!(ErrorCode::from_u16(0).is_none());
        assert!(ErrorCode::from_u16(16).is_none());
    }
}
