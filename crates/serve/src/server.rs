//! The connection acceptor, bounded worker pool, and admission control.
//!
//! # Threading model
//!
//! One acceptor thread owns the `TcpListener`. Each accepted connection
//! gets a reader thread that decodes request frames and submits *jobs*;
//! a fixed pool of worker threads drains the bounded job queue and
//! executes queries. A connection reader blocks until its job's response
//! has been written before reading the next frame, so responses on one
//! connection never interleave, while the pool still bounds total
//! concurrent execution across all connections.
//!
//! # Admission control
//!
//! A query is admitted in three gates, each with a typed rejection:
//!
//! 1. **Tenant quota** — at most [`ServeConfig::tenant_max_in_flight`]
//!    queued-or-running queries per tenant id ([`ErrorCode::QuotaExceeded`]).
//! 2. **Queue depth** — at most [`ServeConfig::queue_depth`] waiting jobs
//!    ([`ErrorCode::ServerBusy`]).
//! 3. **Memory pressure** — when the session has a `MemoryGovernor`, a
//!    worker holds the job while the governor is saturated, up to
//!    [`ServeConfig::admission_wait`], then rejects with
//!    [`ErrorCode::ServerBusy`]. Queries that pass admission but exceed a
//!    budget mid-flight fail with [`ErrorCode::ResourceExhausted`].
//!
//! Tenant memory shares are enforced structurally: each of a tenant's
//! queries runs under a per-query cap of
//! `governor_limit × tenant_memory_share / tenant_max_in_flight`, so even
//! a tenant at its in-flight quota cannot hold more than its share.
//!
//! # Drain protocol
//!
//! [`Server::shutdown`] (1) stops accepting connections, (2) answers new
//! queries with [`ErrorCode::ShuttingDown`], (3) lets queued and running
//! queries finish under [`ServeConfig::drain_deadline`], (4) cancels
//! stragglers through their [`QueryContext`] and flushes never-run queued
//! jobs with `ShuttingDown`, then (5) closes every client socket and
//! joins all threads. The wall-clock cost is recorded in the
//! `idf_server_drain_ns` histogram.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use idf_engine::error::{catch_panics, EngineError, Result};
use idf_engine::query::QueryContext;
use idf_engine::session::Session;

use crate::failpoints;
use crate::wire::{self, ErrorCode, Request, MAX_REQUEST_FRAME, ROWS_PER_FRAME};

/// Crate-wide lock-acquisition order, enforced by idf-lint's
/// `lock-order` rule: a lock may only be acquired while holding locks
/// that appear strictly earlier in this list.
pub const LOCK_ORDER: &[(&str, &str)] = &[
    (
        "queue",
        "admission queue; taken first so the quota check and the enqueue are one atomic step",
    ),
    (
        "tenants",
        "per-tenant in-flight counts; nested inside queue on the admission path",
    ),
];

/// Service-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries (bounds concurrent execution).
    pub workers: usize,
    /// Jobs that may wait in the queue before submissions are rejected
    /// with [`ErrorCode::ServerBusy`].
    pub queue_depth: usize,
    /// Queued-or-running queries allowed per tenant id before
    /// [`ErrorCode::QuotaExceeded`].
    pub tenant_max_in_flight: usize,
    /// Fraction of the governor's byte budget one tenant may hold across
    /// its in-flight queries (see the module docs for how it is applied).
    pub tenant_memory_share: f64,
    /// How long a worker waits for a saturated memory governor to clear
    /// before rejecting the job with [`ErrorCode::ServerBusy`].
    pub admission_wait: Duration,
    /// How long [`Server::shutdown`] lets in-flight queries finish before
    /// cancelling them.
    pub drain_deadline: Duration,
    /// Deadline applied to every served query, anchored at execution
    /// start (`None`: no deadline).
    pub query_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            tenant_max_in_flight: 8,
            tenant_memory_share: 0.5,
            admission_wait: Duration::from_millis(250),
            drain_deadline: Duration::from_secs(5),
            query_timeout: None,
        }
    }
}

/// What [`Server::shutdown`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Running queries cancelled at the drain deadline.
    pub cancelled: usize,
    /// Queued jobs that never ran, answered with `ShuttingDown`.
    pub flushed: usize,
    /// Wall-clock drain time.
    pub elapsed: Duration,
}

/// One submitted query waiting for (or being run by) a worker.
struct Job {
    tenant: String,
    sql: String,
    stream: TcpStream,
    done: Arc<Gate>,
}

/// A one-shot completion latch.
struct Gate {
    opened: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            opened: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *lock(&self.opened) = true;
        // idf-lint: allow(condvar-discipline) -- 'opened' was set under its lock in the statement above; the temporary guard is already gone
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut opened = lock(&self.opened);
        while !*opened {
            opened = self
                .cv
                .wait(opened)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Lock a mutex, surviving poisoning (a panicking worker must not wedge
/// the whole server).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Shared {
    session: Session,
    config: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    /// Set when the drain deadline has passed: workers answer remaining
    /// queued jobs with `ShuttingDown` instead of executing them.
    flush_mode: AtomicBool,
    /// Jobs answered `ShuttingDown` without executing.
    flushed: AtomicUsize,
    stop_workers: AtomicBool,
    /// Queued-or-running query count per tenant id.
    tenants: Mutex<HashMap<String, usize>>,
    /// Contexts of running queries, for drain-time cancellation.
    inflight: Mutex<HashMap<u64, Arc<QueryContext>>>,
    next_query_id: AtomicU64,
    /// Jobs queued or running (drain waits for this to reach zero).
    active_jobs: AtomicUsize,
    /// Socket clone per live connection, for drain-time close.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running SQL server bound to a TCP address.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// queries against `session`.
    pub fn bind(session: Session, addr: impl ToSocketAddrs, config: ServeConfig) -> Result<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| EngineError::exec(format!("serve bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::exec(format!("serve local_addr: {e}")))?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            session,
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            flush_mode: AtomicBool::new(false),
            flushed: AtomicUsize::new(0),
            stop_workers: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            next_query_id: AtomicU64::new(0),
            active_jobs: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            conn_threads: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully drain and stop the server (see the module docs for the
    /// protocol). Consumes the server; every spawned thread is joined.
    pub fn shutdown(mut self) -> DrainReport {
        let t0 = Instant::now();
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept(), then join it so the
        // listener is dropped and no new connection can sneak in.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Let queued + running queries finish under the drain deadline.
        let deadline = t0 + shared.config.drain_deadline;
        while shared.active_jobs.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Deadline passed: flush remaining queued jobs instead of
        // running them, and cancel the queries already executing. Both
        // answer with typed frames (ShuttingDown and Cancelled), then a
        // grace period lets the cooperative cancels unwind.
        shared.flush_mode.store(true, Ordering::SeqCst);
        let straggling: Vec<Arc<QueryContext>> = lock(&shared.inflight).values().cloned().collect();
        for ctx in &straggling {
            ctx.cancel();
        }
        let grace = Instant::now() + shared.config.drain_deadline;
        while shared.active_jobs.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Anything still queued (workers wedged past the grace period):
        // answer ShuttingDown directly.
        let leftover: Vec<Job> = lock(&shared.queue).drain(..).collect();
        registry().server_queue_depth.set(0);
        for job in &leftover {
            let mut stream = &job.stream;
            let _ = write_response_frame(
                &mut stream,
                &wire::encode_error(ErrorCode::ShuttingDown, "server drained before execution"),
            );
            release_tenant(shared, &job.tenant);
            shared.active_jobs.fetch_sub(1, Ordering::SeqCst);
            shared.flushed.fetch_add(1, Ordering::SeqCst);
            job.done.open();
        }
        // Stop the pool and unblock every connection reader.
        shared.stop_workers.store(true, Ordering::SeqCst);
        // idf-lint: allow(condvar-discipline) -- stop_workers is a SeqCst store; workers re-check it under the queue lock inside their wait loop
        shared.queue_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for (_, conn) in lock(&shared.conns).drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let conn_threads: Vec<JoinHandle<()>> = lock(&shared.conn_threads).drain(..).collect();
        for handle in conn_threads {
            let _ = handle.join();
        }
        let elapsed = t0.elapsed();
        registry().server_drain_ns.record(elapsed.as_nanos() as u64);
        DrainReport {
            cancelled: straggling.len(),
            flushed: shared.flushed.load(Ordering::SeqCst),
            elapsed,
        }
    }
}

fn registry() -> &'static idf_obs::MetricsRegistry {
    idf_obs::global()
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        // Response frames are small back-to-back writes followed by a
        // read; without NODELAY the Nagle/delayed-ACK interaction adds
        // ~40ms to every query.
        let _ = stream.set_nodelay(true);
        registry().server_connections_total.inc();
        // Fault injection: a failed accept drops the connection on the
        // floor — the client sees EOF and the acceptor keeps going.
        if failpoints::check(failpoints::ACCEPT).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).insert(conn_id, clone);
        }
        registry().server_connections_open.add(1);
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            serve_conn(&shared_conn, stream, conn_id);
            registry().server_connections_open.sub(1);
            lock(&shared_conn.conns).remove(&conn_id);
        });
        lock(&shared.conn_threads).push(handle);
    }
}

/// Read and answer request frames until the peer closes (or breaks) the
/// connection.
fn serve_conn(shared: &Arc<Shared>, stream: TcpStream, _conn_id: u64) {
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    loop {
        let body = match wire::read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(Some(body)) => body,
            // Clean close on a frame boundary.
            Ok(None) => break,
            Err(err) => {
                // Torn frame, CRC mismatch, oversized length prefix, or a
                // dead socket: answer (best-effort) and close — there is
                // no way to resynchronize a byte stream mid-frame.
                if matches!(err, EngineError::Corrupt(_)) {
                    let _ = write_response_frame(
                        &mut &stream,
                        &wire::encode_error(ErrorCode::BadRequest, &err.to_string()),
                    );
                }
                break;
            }
        };
        let request = match wire::decode_request(&body) {
            Ok(request) => request,
            Err(err) => {
                let _ = write_response_frame(
                    &mut &stream,
                    &wire::encode_error(ErrorCode::BadRequest, &err.to_string()),
                );
                break;
            }
        };
        let Request::Query { tenant, sql } = request;
        if let Err(err) = wire::check_sql_len(sql.len()) {
            respond_reject(&stream, ErrorCode::SqlTooLarge, &err.to_string());
            continue;
        }
        if shared.draining.load(Ordering::SeqCst) {
            respond_reject(&stream, ErrorCode::ShuttingDown, "server is draining");
            continue;
        }
        let writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(_) => break,
        };
        let done = Gate::new();
        match submit(
            shared,
            Job {
                tenant,
                sql,
                stream: writer,
                done: Arc::clone(&done),
            },
        ) {
            Ok(()) => done.wait(),
            Err((code, message)) => respond_reject(&stream, code, &message),
        }
    }
}

/// Enqueue a job, enforcing the tenant quota and queue depth. On
/// rejection the job is handed back so the connection thread can answer.
fn submit(shared: &Arc<Shared>, job: Job) -> std::result::Result<(), (ErrorCode, String)> {
    let mut queue = lock(&shared.queue);
    {
        let mut tenants = lock(&shared.tenants);
        let in_flight = tenants.entry(job.tenant.clone()).or_insert(0);
        if *in_flight >= shared.config.tenant_max_in_flight {
            registry().server_rejected_quota.inc();
            return Err((
                ErrorCode::QuotaExceeded,
                format!(
                    "tenant {:?} is at its quota of {} in-flight queries",
                    job.tenant, shared.config.tenant_max_in_flight
                ),
            ));
        }
        if queue.len() >= shared.config.queue_depth {
            registry().server_rejected_busy.inc();
            return Err((
                ErrorCode::ServerBusy,
                format!(
                    "admission queue is at depth {} — retry later",
                    shared.config.queue_depth
                ),
            ));
        }
        *in_flight += 1;
    }
    shared.active_jobs.fetch_add(1, Ordering::SeqCst);
    queue.push_back(job);
    registry().server_queue_depth.set(queue.len() as i64);
    shared.queue_cv.notify_one();
    Ok(())
}

fn release_tenant(shared: &Shared, tenant: &str) {
    let mut tenants = lock(&shared.tenants);
    if let Some(count) = tenants.get_mut(tenant) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            tenants.remove(tenant);
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    registry().server_queue_depth.set(queue.len() as i64);
                    break job;
                }
                if shared.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // Belt and braces: accounting must unwind even if serving the
        // query panics in an unexpected place (execution itself is
        // already panic-caught).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_query(shared, &job);
        }));
        release_tenant(shared, &job.tenant);
        shared.active_jobs.fetch_sub(1, Ordering::SeqCst);
        job.done.open();
        drop(outcome);
    }
}

/// Execute one admitted job end to end and write its response stream.
fn serve_query(shared: &Arc<Shared>, job: &Job) {
    // Past the drain deadline, queued work is flushed, not executed.
    if shared.flush_mode.load(Ordering::SeqCst) {
        shared.flushed.fetch_add(1, Ordering::SeqCst);
        respond_reject(
            &job.stream,
            ErrorCode::ShuttingDown,
            "server drained before execution",
        );
        return;
    }
    // Memory-pressure admission: hold the job while the governor is
    // saturated, then reject ServerBusy — never start a query that is
    // guaranteed to die on its first allocation.
    if let Some(governor) = shared.session.memory_governor() {
        let wait_start = Instant::now();
        while governor.used() >= governor.limit() {
            if wait_start.elapsed() >= shared.config.admission_wait {
                registry().server_rejected_busy.inc();
                respond_reject(
                    &job.stream,
                    ErrorCode::ServerBusy,
                    "memory governor saturated past the admission wait — retry later",
                );
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let ctx = build_context(shared);
    let query_id = shared.next_query_id.fetch_add(1, Ordering::SeqCst);
    lock(&shared.inflight).insert(query_id, Arc::clone(&ctx));
    registry().server_in_flight.add(1);
    // Collect fully before writing anything: a response stream is either
    // one Error frame or a complete Schema/Rows*/End sequence — an
    // execution failure can never leave a partial result on the wire.
    let outcome = catch_panics(|| {
        let df = shared.session.sql(&job.sql)?;
        let schema = df.schema();
        let chunk = df.collect_ctx(&ctx)?;
        Ok((schema, chunk))
    });
    lock(&shared.inflight).remove(&query_id);
    registry().server_in_flight.sub(1);
    let mut writer = &job.stream;
    let sent = match outcome {
        Ok((schema, chunk)) => (|| -> Result<()> {
            let rows = chunk.to_rows();
            write_response_frame(&mut writer, &wire::encode_schema(&schema))?;
            for slice in rows.chunks(ROWS_PER_FRAME.max(1)) {
                write_response_frame(&mut writer, &wire::encode_rows(schema.len(), slice))?;
            }
            write_response_frame(&mut writer, &wire::encode_end(rows.len() as u64))
        })(),
        Err(err) => {
            let code = ErrorCode::for_engine_error(&err);
            write_response_frame(&mut writer, &wire::encode_error(code, &err.to_string()))
        }
    };
    if sent.is_err() {
        // Transport (or injected write) failure mid-stream: the stream
        // contract is broken, so close the socket — the reader thread
        // unblocks with EOF and the client sees a truncated stream.
        let _ = job.stream.shutdown(Shutdown::Both);
    }
}

/// A query context carrying the session's limits, the server deadline,
/// and the tenant's structural memory share.
fn build_context(shared: &Shared) -> Arc<QueryContext> {
    let mut builder = QueryContext::builder();
    let mut memory_limit = shared.session.config().query_memory_limit;
    if let Some(governor) = shared.session.memory_governor() {
        let share = (governor.limit() as f64 * shared.config.tenant_memory_share) as usize;
        let per_query = (share / shared.config.tenant_max_in_flight.max(1)).max(1);
        memory_limit = Some(memory_limit.map_or(per_query, |m| m.min(per_query)));
        builder = builder.governor(governor);
    }
    if let Some(limit) = memory_limit {
        builder = builder.memory_limit(limit);
    }
    if let Some(timeout) = shared.config.query_timeout {
        builder = builder.timeout(timeout);
    }
    builder.build()
}

/// Best-effort single-frame rejection (admission failures, drain).
fn respond_reject(mut stream: &TcpStream, code: ErrorCode, message: &str) {
    let _ = write_response_frame(&mut stream, &wire::encode_error(code, message));
}

/// Every response frame leaves through here: the `serve::write_frame`
/// failpoint makes transport failure injectable at any point in a
/// result stream.
fn write_response_frame(stream: &mut &TcpStream, body: &[u8]) -> Result<()> {
    failpoints::check(failpoints::WRITE_FRAME)?;
    wire::write_frame(stream, body)
}
