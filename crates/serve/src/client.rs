//! A minimal blocking client for the wire protocol.
//!
//! One query at a time per connection: [`Client::query`] sends a `Query`
//! frame and reads the response stream to its `End` (or `Error`) frame.
//! Used by the abuse/e2e suites and the `harness serve` load generator;
//! it is also the reference implementation for third-party clients.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use idf_engine::error::{EngineError, Result};
use idf_engine::types::Value;

use crate::wire::{self, ErrorFrame, FieldDesc, Response, MAX_RESPONSE_FRAME};

/// How one query failed, from the client's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server answered with a typed `Error` frame; the connection is
    /// still usable.
    Server(ErrorFrame),
    /// The transport or protocol broke (I/O failure, torn frame, stream
    /// cut mid-result); the connection must be abandoned.
    Transport(EngineError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server(frame) => write!(f, "server error: {frame}"),
            ClientError::Transport(err) => write!(f, "transport error: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A fully received query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Result schema.
    pub fields: Vec<FieldDesc>,
    /// All result rows, row-major.
    pub rows: Vec<Vec<Value>>,
}

/// A blocking connection to an `idf-serve` server.
pub struct Client {
    stream: TcpStream,
    tenant: String,
}

impl Client {
    /// Connect to `addr`, accounting queries against `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| EngineError::exec(format!("client connect: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| EngineError::exec(format!("client nodelay: {e}")))?;
        Ok(Client {
            stream,
            tenant: tenant.into(),
        })
    }

    /// Bound every read; `None` blocks forever (the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| EngineError::exec(format!("client read timeout: {e}")))
    }

    /// Run one SQL statement and collect its full result.
    pub fn query(&mut self, sql: &str) -> std::result::Result<QueryReply, ClientError> {
        let body = wire::encode_query(&self.tenant, sql).map_err(ClientError::Transport)?;
        wire::write_frame(&mut self.stream, &body).map_err(ClientError::Transport)?;
        let mut fields: Option<Vec<FieldDesc>> = None;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        loop {
            let frame = wire::read_frame(&mut self.stream, MAX_RESPONSE_FRAME)
                .map_err(ClientError::Transport)?
                .ok_or_else(|| {
                    ClientError::Transport(EngineError::exec(
                        "connection closed mid-response".to_string(),
                    ))
                })?;
            match wire::decode_response(&frame).map_err(ClientError::Transport)? {
                Response::Schema(f) => fields = Some(f),
                Response::Rows(mut slice) => rows.append(&mut slice),
                Response::End(total) => {
                    if rows.len() as u64 != total {
                        return Err(ClientError::Transport(EngineError::corrupt(format!(
                            "result stream claimed {total} rows but carried {}",
                            rows.len()
                        ))));
                    }
                    return Ok(QueryReply {
                        fields: fields.unwrap_or_default(),
                        rows,
                    });
                }
                Response::Error(frame) => return Err(ClientError::Server(frame)),
            }
        }
    }

    /// Send raw bytes on the socket (abuse tests: torn frames, bad CRCs,
    /// hostile length prefixes).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<()> {
        use std::io::Write;
        self.stream
            .write_all(bytes)
            .map_err(|e| EngineError::exec(format!("client raw write: {e}")))
    }

    /// Read one raw response frame body, `Ok(None)` on clean close.
    pub fn read_raw(&mut self) -> Result<Option<Vec<u8>>> {
        wire::read_frame(&mut self.stream, MAX_RESPONSE_FRAME)
    }
}
