//! # idf-serve — the SQL service layer
//!
//! Turns the Indexed DataFrame library into a *system*: a TCP server
//! speaking a length-prefixed binary protocol (the WAL's
//! `u32 len | u32 crc32 | body` framing, shared via `idf_durable::codec`)
//! that carries SQL text in and schema + row-chunk results out.
//!
//! The paper's demo is exactly this shape — interactive clients issuing
//! low-latency queries against one shared, updatable indexed table — and
//! Shared Arrangements (PAPERS.md) motivates the multi-tenant angle:
//! many concurrent clients multiplexed over one shared arrangement, with
//! admission control keeping tail latency bounded under overload.
//!
//! ```no_run
//! use idf_engine::session::Session;
//! use idf_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::bind(Session::new(), "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr(), "tenant-a").unwrap();
//! client.query("CREATE TABLE t (id BIGINT, name VARCHAR)").unwrap();
//! client.query("INSERT INTO t VALUES (1, 'ada')").unwrap();
//! let reply = client.query("SELECT name FROM t WHERE id = 1").unwrap();
//! assert_eq!(reply.rows.len(), 1);
//! let report = server.shutdown();
//! assert_eq!(report.cancelled, 0);
//! ```
//!
//! See the module docs of [`wire`] (frame format, typed error codes) and
//! [`server`] (threading model, admission gates, drain protocol), and
//! DESIGN.md §10.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod failpoints;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, QueryReply};
pub use server::{DrainReport, ServeConfig, Server};
pub use wire::{ErrorCode, ErrorFrame, FieldDesc, MAX_SQL_BYTES};
