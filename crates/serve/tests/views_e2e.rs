//! Materialized views over the wire: DDL and reads through the service
//! layer, typed error frames for view failures (no partial result
//! frames), and the connection staying healthy afterwards.

use std::time::Duration;

use idf_core::prelude::*;
use idf_engine::session::Session;
use idf_engine::types::Value;
use idf_serve::{Client, ClientError, ErrorCode, ServeConfig, Server};
use idf_views::ViewsConfig;

fn serve_with_views() -> (Server, Session, std::sync::Arc<idf_views::ViewsSystem>) {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    let views = idf_views::install(&session, ViewsConfig::default());
    let server = Server::bind(session.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    (server, session, views)
}

fn client(server: &Server) -> Client {
    let c = Client::connect(server.local_addr(), "acme").unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn materialized_view_round_trip_over_the_wire() {
    let (server, _session, _views) = serve_with_views();
    let mut c = client(&server);
    c.query("CREATE TABLE ev (k BIGINT, v BIGINT)").unwrap();
    c.query("INSERT INTO ev VALUES (1, 5), (2, 50), (3, 70)")
        .unwrap();
    c.query("CREATE MATERIALIZED VIEW big AS SELECT k, v FROM ev WHERE v > 10")
        .unwrap();
    // Appends after creation maintain the view incrementally.
    c.query("INSERT INTO ev VALUES (4, 40), (5, 2)").unwrap();
    let reply = c.query("SELECT k FROM big ORDER BY k").unwrap();
    assert_eq!(
        reply.rows,
        vec![
            vec![Value::Int64(2)],
            vec![Value::Int64(3)],
            vec![Value::Int64(4)],
        ]
    );
    // REFRESH and DROP both round-trip as plain statements.
    c.query("REFRESH MATERIALIZED VIEW big").unwrap();
    let reply = c.query("SELECT k FROM big ORDER BY k").unwrap();
    assert_eq!(reply.rows.len(), 3);
    c.query("DROP MATERIALIZED VIEW big").unwrap();
    let err = c.query("SELECT k FROM big").unwrap_err();
    match err {
        ClientError::Server(frame) => assert_eq!(frame.code, ErrorCode::QueryFailed, "{frame}"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn view_errors_are_typed_frames_and_never_partial_results() {
    let (server, _session, _views) = serve_with_views();
    let mut c = client(&server);
    c.query("CREATE TABLE t (k BIGINT)").unwrap();
    c.query("CREATE MATERIALIZED VIEW mv AS SELECT k FROM t WHERE k > 0")
        .unwrap();
    // Duplicate CREATE: one typed error frame, nothing else.
    let err = c
        .query("CREATE MATERIALIZED VIEW mv AS SELECT k FROM t")
        .unwrap_err();
    match err {
        ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorCode::ViewAlreadyExists, "{frame}");
            assert!(frame.message.contains("mv"), "{frame}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // Unknown view on DROP and REFRESH.
    for stmt in [
        "DROP MATERIALIZED VIEW nope",
        "REFRESH MATERIALIZED VIEW nope",
    ] {
        let err = c.query(stmt).unwrap_err();
        match err {
            ClientError::Server(frame) => {
                assert_eq!(frame.code, ErrorCode::UnknownView, "{stmt}: {frame}");
                assert!(frame.message.contains("nope"), "{frame}");
            }
            other => panic!("{stmt}: expected an error frame, got {other:?}"),
        }
    }
    // The connection survives every typed failure: the next query on the
    // same socket streams a complete, well-formed result (a partial
    // result frame before the error would have corrupted the stream).
    c.query("INSERT INTO t VALUES (1), (2)").unwrap();
    let reply = c.query("SELECT k FROM mv ORDER BY k").unwrap();
    assert_eq!(
        reply.rows,
        vec![vec![Value::Int64(1)], vec![Value::Int64(2)]]
    );
    server.shutdown();
}
