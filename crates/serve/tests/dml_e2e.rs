//! DML over the wire: UPDATE/DELETE round trips with rows-affected
//! acknowledgement frames, COMPACT reports, typed error frames for
//! malformed DML, and the connection staying healthy afterwards.

use std::time::Duration;

use idf_core::prelude::*;
use idf_engine::session::Session;
use idf_engine::types::{DataType, Value};
use idf_serve::{Client, ClientError, ErrorCode, ServeConfig, Server};

fn serve_indexed() -> (Server, Session) {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    idf_compact::install(&session, idf_compact::CompactConfig::default());
    let server = Server::bind(session.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    (server, session)
}

fn client(server: &Server) -> Client {
    let c = Client::connect(server.local_addr(), "acme").unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn update_delete_ack_rows_affected_over_the_wire() {
    let (server, _session) = serve_indexed();
    let mut c = client(&server);
    c.query("CREATE TABLE inv (k BIGINT, qty BIGINT)").unwrap();
    c.query("INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
        .unwrap();

    // UPDATE acks with a one-row `rows` frame carrying rows-affected.
    let reply = c.query("UPDATE inv SET qty = qty + 5 WHERE k < 3").unwrap();
    assert_eq!(reply.fields.len(), 1);
    assert_eq!(reply.fields[0].name, "rows");
    assert_eq!(reply.fields[0].data_type, DataType::Int64);
    assert_eq!(reply.rows, vec![vec![Value::Int64(2)]]);

    // DELETE acks the same way; a non-matching WHERE acks zero.
    let reply = c.query("DELETE FROM inv WHERE k = 4").unwrap();
    assert_eq!(reply.rows, vec![vec![Value::Int64(1)]]);
    let reply = c.query("DELETE FROM inv WHERE k = 99").unwrap();
    assert_eq!(reply.rows, vec![vec![Value::Int64(0)]]);

    // Reads on the same connection see the DML'd state.
    let reply = c.query("SELECT k, qty FROM inv ORDER BY k").unwrap();
    assert_eq!(
        reply.rows,
        vec![
            vec![Value::Int64(1), Value::Int64(15)],
            vec![Value::Int64(2), Value::Int64(25)],
            vec![Value::Int64(3), Value::Int64(30)],
        ]
    );

    // COMPACT streams its report frame back like any statement.
    let reply = c.query("COMPACT inv").unwrap();
    assert_eq!(reply.fields[0].name, "table");
    assert_eq!(reply.rows.len(), 1);
    assert_eq!(reply.rows[0][0], Value::Utf8("inv".into()));
    let Value::Int64(reclaimed) = reply.rows[0][1] else {
        panic!("rows_reclaimed must be an integer: {:?}", reply.rows[0][1]);
    };
    assert!(reclaimed > 0, "the superseded versions must be reclaimed");

    // Answers are unchanged after the rewrite.
    let reply = c.query("SELECT k, qty FROM inv WHERE k = 1").unwrap();
    assert_eq!(reply.rows, vec![vec![Value::Int64(1), Value::Int64(15)]]);
    server.shutdown();
}

#[test]
fn malformed_dml_is_a_typed_error_and_connection_survives() {
    let (server, _session) = serve_indexed();
    let mut c = client(&server);
    c.query("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap();
    c.query("INSERT INTO t VALUES (1, 1)").unwrap();

    // Unknown SET column: typed error frame, no partial result stream.
    let err = c.query("UPDATE t SET nope = 1").unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("expected a server error frame: {err}");
    };
    assert_eq!(frame.code, ErrorCode::QueryFailed);
    assert!(frame.message.contains("nope"), "{}", frame.message);

    // DML against a missing table and COMPACT of one too.
    for bad in [
        "DELETE FROM missing WHERE k = 1",
        "UPDATE missing SET k = 1",
        "COMPACT missing",
    ] {
        let err = c.query(bad).unwrap_err();
        let ClientError::Server(frame) = err else {
            panic!("{bad}: expected a server error frame: {err}");
        };
        assert_eq!(frame.code, ErrorCode::QueryFailed, "{bad}");
        assert!(
            frame.message.contains("missing"),
            "{bad}: {}",
            frame.message
        );
    }

    // The connection stays healthy: the same socket keeps serving.
    let reply = c.query("SELECT k, v FROM t").unwrap();
    assert_eq!(reply.rows, vec![vec![Value::Int64(1), Value::Int64(1)]]);
    server.shutdown();
}

#[test]
fn concurrent_wire_dml_keeps_statements_atomic() {
    let (server, _session) = serve_indexed();
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr, "setup").unwrap();
        c.query("CREATE TABLE acct (k BIGINT, bal BIGINT)").unwrap();
        c.query("INSERT INTO acct VALUES (1, 0), (2, 0), (3, 0), (4, 0)")
            .unwrap();
    }
    // Four writers, each hammering its own key with UPDATEs.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, format!("w{w}")).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                for i in 1..=25i64 {
                    let reply = c
                        .query(&format!("UPDATE acct SET bal = {i} WHERE k = {}", w + 1))
                        .unwrap();
                    assert_eq!(reply.rows, vec![vec![Value::Int64(1)]]);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let mut c = Client::connect(addr, "check").unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Every key ends at its writer's final value — one visible version
    // per key regardless of interleaving.
    let reply = c.query("SELECT k, bal FROM acct ORDER BY k").unwrap();
    assert_eq!(
        reply.rows,
        (1..=4)
            .map(|k| vec![Value::Int64(k), Value::Int64(25)])
            .collect::<Vec<_>>()
    );
    server.shutdown();
}
