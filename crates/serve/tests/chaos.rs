//! Seeded chaos round over the service-layer failpoint sites, plus the
//! drain/deadline/quota behaviors that need deterministic slow queries
//! (injected via the engine's `WORKER_START` delay site).
//!
//! Failpoints are process-global, so everything here runs inside one
//! `#[test]` per concern and this file is its own test binary.

#![cfg(feature = "failpoints")]

use std::time::{Duration, Instant};

use idf_engine::config::EngineConfig;
use idf_engine::session::Session;
use idf_fail::{FailConfig, FailGuard};
use idf_serve::{failpoints, Client, ClientError, ErrorCode, ServeConfig, Server};
use rand::{rngs::StdRng, Rng, SeedableRng};

const BUDGET: usize = 64 << 20;

fn serve(config: ServeConfig) -> (Server, Session) {
    let engine_config = EngineConfig {
        total_memory_limit: Some(BUDGET),
        ..EngineConfig::default()
    };
    let session = Session::with_config(engine_config);
    session
        .sql("CREATE TABLE kv (id BIGINT, name VARCHAR)")
        .unwrap();
    session
        .sql("INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    let server = Server::bind(session.clone(), "127.0.0.1:0", config).unwrap();
    (server, session)
}

fn assert_governor_zero(session: &Session) {
    let governor = session.memory_governor().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while governor.used() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(governor.used(), 0, "governor leaked bytes under chaos");
}

fn query_ok(server: &Server) {
    let mut client = Client::connect(server.local_addr(), "probe").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = client.query("SELECT * FROM kv WHERE id = 1").unwrap();
    assert_eq!(reply.rows.len(), 1);
}

/// Iterate every registered service site with seeded fault counts: a
/// fault at any site must leave the server serving, panic-free, with the
/// governor drained to zero.
#[test]
fn seeded_chaos_round_over_all_sites() {
    let (server, session) = serve(ServeConfig::default());
    let mut rng = StdRng::seed_from_u64(0x5e7_1e57);
    for &site in failpoints::SITES {
        for round in 0..3 {
            let times = rng.gen_range(1..=3) as u64;
            let guard = FailGuard::new(site, FailConfig::error("chaos").times(times));
            for attempt in 0..(times + 2) {
                let mut client = match Client::connect(server.local_addr(), "chaos") {
                    Ok(client) => client,
                    // Connect raced the faulted acceptor; that IS the
                    // injected failure surfacing.
                    Err(_) => continue,
                };
                client
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                // Either outcome is legal under injected faults — a full
                // reply, a typed error frame, or a cut connection — but
                // never a hang or a panic.
                let _ = client.query("SELECT name FROM kv WHERE id = 2");
                let _ = (site, round, attempt);
            }
            drop(guard);
        }
        // Site exhausted: service must be fully restored.
        query_ok(&server);
        assert_governor_zero(&session);
    }
    let report = server.shutdown();
    assert_eq!(report.cancelled, 0);
}

/// A tenant at its in-flight quota gets a typed QuotaExceeded while a
/// different tenant is still admitted.
#[test]
fn tenant_quota_is_enforced_per_tenant() {
    let (server, session) = serve(ServeConfig {
        tenant_max_in_flight: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    // Make queries measurably slow so one is reliably in flight.
    let _slow = FailGuard::new(idf_engine::failpoints::WORKER_START, FailConfig::delay(300));
    let busy_tenant = std::thread::spawn(move || {
        let mut client = Client::connect(addr, "acme").unwrap();
        client.query("SELECT * FROM kv").unwrap();
    });
    std::thread::sleep(Duration::from_millis(80));
    let mut same = Client::connect(addr, "acme").unwrap();
    same.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match same.query("SELECT * FROM kv") {
        Err(ClientError::Server(frame)) => {
            assert_eq!(frame.code, ErrorCode::QuotaExceeded, "{frame}")
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let mut other_tenant = Client::connect(addr, "globex").unwrap();
    other_tenant
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = other_tenant.query("SELECT * FROM kv WHERE id = 3").unwrap();
    assert_eq!(reply.rows.len(), 1);
    busy_tenant.join().unwrap();
    assert_governor_zero(&session);
    server.shutdown();
}

/// The server-imposed deadline maps to a typed DeadlineExceeded frame.
#[test]
fn server_deadline_yields_typed_frame() {
    let (server, session) = serve(ServeConfig {
        query_timeout: Some(Duration::from_millis(20)),
        ..ServeConfig::default()
    });
    let _slow = FailGuard::new(idf_engine::failpoints::WORKER_START, FailConfig::delay(200));
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.query("SELECT * FROM kv") {
        Err(ClientError::Server(frame)) => {
            assert_eq!(frame.code, ErrorCode::DeadlineExceeded, "{frame}")
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_governor_zero(&session);
    server.shutdown();
}

/// Graceful drain: in-flight queries finish when the deadline allows it;
/// when it does not, they are cancelled through their QueryContext and
/// the client sees a typed frame, never a partial stream.
#[test]
fn drain_finishes_or_cancels_in_flight_queries() {
    // Generous deadline: the slow query finishes, nothing is cancelled.
    let (server, session) = serve(ServeConfig {
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    {
        let _slow = FailGuard::new(idf_engine::failpoints::WORKER_START, FailConfig::delay(200));
        let inflight = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "acme").unwrap();
            client.query("SELECT * FROM kv").unwrap()
        });
        std::thread::sleep(Duration::from_millis(60));
        let report = server.shutdown();
        let reply = inflight.join().unwrap();
        assert_eq!(reply.rows.len(), 3);
        assert_eq!(report.cancelled, 0, "{report:?}");
    }
    assert_governor_zero(&session);

    // Tight deadline: the in-flight query is cancelled cooperatively and
    // answers with a typed Cancelled frame.
    let (server, session) = serve(ServeConfig {
        drain_deadline: Duration::from_millis(30),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    {
        let _slow = FailGuard::new(idf_engine::failpoints::WORKER_START, FailConfig::delay(500));
        let inflight = std::thread::spawn(move || {
            let mut client = Client::connect(addr, "acme").unwrap();
            client.query("SELECT * FROM kv")
        });
        std::thread::sleep(Duration::from_millis(60));
        let t0 = Instant::now();
        let report = server.shutdown();
        assert_eq!(report.cancelled, 1, "{report:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drain took {:?}",
            t0.elapsed()
        );
        match inflight.join().unwrap() {
            Err(ClientError::Server(frame)) => {
                assert_eq!(frame.code, ErrorCode::Cancelled, "{frame}")
            }
            other => panic!("expected a typed Cancelled frame, got {other:?}"),
        }
    }
    assert_governor_zero(&session);
}
