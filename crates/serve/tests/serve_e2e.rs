//! End-to-end service tests: full DDL/INSERT/SELECT round trips over the
//! wire, concurrent clients, and server metrics exposition.

use std::time::Duration;

use idf_engine::session::Session;
use idf_engine::types::{DataType, Value};
use idf_serve::{Client, ServeConfig, Server};

fn serve() -> (Server, Session) {
    let session = Session::new();
    let server = Server::bind(session.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    (server, session)
}

#[test]
fn ddl_insert_select_roundtrip_over_the_wire() {
    let (server, _session) = serve();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
        .query("CREATE TABLE events (id BIGINT, name VARCHAR, score DOUBLE, at TIMESTAMP)")
        .unwrap();
    client
        .query(
            "INSERT INTO events VALUES \
             (1, 'ada', 0.5, 1000), (2, 'bob', 1.5, 2000), (1, NULL, 2.5, 3000)",
        )
        .unwrap();
    let reply = client
        .query("SELECT id, name, score, at FROM events WHERE id = 1 ORDER BY at")
        .unwrap();
    assert_eq!(reply.fields.len(), 4);
    assert_eq!(reply.fields[0].name, "id");
    assert_eq!(reply.fields[0].data_type, DataType::Int64);
    assert_eq!(reply.fields[3].data_type, DataType::Timestamp);
    assert_eq!(
        reply.rows,
        vec![
            vec![
                Value::Int64(1),
                Value::Utf8("ada".into()),
                Value::Float64(0.5),
                Value::Timestamp(1000),
            ],
            vec![
                Value::Int64(1),
                Value::Null,
                Value::Float64(2.5),
                Value::Timestamp(3000),
            ],
        ]
    );
    // A join through the same wire connection.
    client
        .query("CREATE TABLE tags (event_id BIGINT, tag VARCHAR)")
        .unwrap();
    client
        .query("INSERT INTO tags VALUES (1, 'hot'), (2, 'cold')")
        .unwrap();
    let reply = client
        .query(
            "SELECT e.name, t.tag FROM events e JOIN tags t ON e.id = t.event_id \
             WHERE t.tag = 'cold'",
        )
        .unwrap();
    assert_eq!(
        reply.rows,
        vec![vec![Value::Utf8("bob".into()), Value::Utf8("cold".into())]]
    );
    let report = server.shutdown();
    assert_eq!(report.cancelled, 0);
}

#[test]
fn result_streams_span_multiple_rows_frames() {
    let (server, _session) = serve();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.query("CREATE TABLE wide (id BIGINT)").unwrap();
    // More rows than ROWS_PER_FRAME (1024) so the stream has to slice.
    for batch in 0..5 {
        let values: Vec<String> = (0..600).map(|i| format!("({})", batch * 600 + i)).collect();
        client
            .query(&format!("INSERT INTO wide VALUES {}", values.join(", ")))
            .unwrap();
    }
    let reply = client.query("SELECT id FROM wide ORDER BY id").unwrap();
    assert_eq!(reply.rows.len(), 3000);
    assert_eq!(reply.rows[0], vec![Value::Int64(0)]);
    assert_eq!(reply.rows[2999], vec![Value::Int64(2999)]);
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_updatable_table() {
    let (server, _session) = serve();
    let addr = server.local_addr();
    {
        let mut client = Client::connect(addr, "setup").unwrap();
        client
            .query("CREATE TABLE counters (id BIGINT, v BIGINT)")
            .unwrap();
    }
    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, format!("writer-{w}")).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for i in 0..25 {
                    client
                        .query(&format!("INSERT INTO counters VALUES ({w}, {i})"))
                        .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, format!("reader-{r}")).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for _ in 0..25 {
                    // Any consistent snapshot is fine; the query must
                    // simply never fail.
                    client.query("SELECT * FROM counters").unwrap();
                }
            })
        })
        .collect();
    for handle in writers.into_iter().chain(readers) {
        handle.join().unwrap();
    }
    let mut client = Client::connect(addr, "check").unwrap();
    let reply = client.query("SELECT * FROM counters").unwrap();
    assert_eq!(reply.rows.len(), 100);
    let report = server.shutdown();
    assert_eq!(report.cancelled, 0);
}

#[cfg(feature = "obs")]
#[test]
fn server_metrics_reach_the_prometheus_exposition() {
    let (server, session) = serve();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client.query("CREATE TABLE m (id BIGINT)").unwrap();
    client.query("SELECT * FROM m").unwrap();
    let text = session.metrics_text();
    for name in [
        "idf_server_connections_total",
        "idf_server_connections_open",
        "idf_server_in_flight",
        "idf_server_queue_depth",
        "idf_server_rejected_busy_total",
        "idf_server_rejected_quota_total",
        "idf_server_drain_ns",
    ] {
        assert!(text.contains(name), "missing {name} in exposition");
    }
    drop(client);
    server.shutdown();
    // Drain time is recorded (count is global and monotonic, so only
    // assert presence of at least our own observation).
    let after = session.metrics_text();
    assert!(after.contains("idf_server_drain_ns"));
}

/// Satellite: a durable table degraded to read-only must surface over the
/// wire as a single typed `ReadOnly` error frame — never a partial
/// Schema/Rows prefix — while reads on the same table keep serving.
#[cfg(feature = "failpoints")]
#[test]
fn degraded_durable_table_returns_one_typed_readonly_frame() {
    use idf_durable::{failpoints, DurableSession, TempDir};
    use idf_engine::config::{DurabilityLevel, EngineConfig};
    use idf_serve::wire::{self, ErrorCode, Response};

    let dir = TempDir::new("serve-degraded");
    let dsess = DurableSession::open(EngineConfig {
        data_dir: Some(dir.path().to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    })
    .unwrap();
    let schema = std::sync::Arc::new(idf_engine::schema::Schema::new(vec![
        idf_engine::schema::Field::required("id", DataType::Int64),
        idf_engine::schema::Field::new("name", DataType::Utf8),
    ]));
    dsess
        .create_table(
            "people",
            schema,
            0,
            idf_core::config::IndexConfig::default(),
        )
        .unwrap();
    let server = Server::bind(
        dsess.session().clone(),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
        .query("INSERT INTO people VALUES (1, 'ada')")
        .unwrap();

    // Poison the WAL with one injected fsync failure (the server shares
    // this process, so the failpoint hits its write path).
    {
        let _guard = idf_fail::FailGuard::new(
            failpoints::WAL_FSYNC,
            idf_fail::FailConfig::error("injected disk fault").times(1),
        );
        let err = client
            .query("INSERT INTO people VALUES (2, 'bob')")
            .unwrap_err();
        match err {
            idf_serve::ClientError::Server(frame) => {
                assert_eq!(frame.code, ErrorCode::ReadOnly, "{frame}");
                assert!(frame.message.contains("read-only"), "{frame}");
            }
            other => panic!("expected a typed server error, got {other:?}"),
        }
    }

    // Raw-frame check: the response stream for a degraded write is the
    // error frame FIRST — no Schema or Rows frame precedes it.
    let body = wire::encode_query("acme", "INSERT INTO people VALUES (3, 'eve')").unwrap();
    client
        .send_raw(&idf_durable::codec::frame(&body).unwrap())
        .unwrap();
    let first = client
        .read_raw()
        .unwrap()
        .expect("server closed instead of answering");
    match wire::decode_response(&first).unwrap() {
        Response::Error(frame) => {
            assert_eq!(frame.code, ErrorCode::ReadOnly, "{frame}");
        }
        other => panic!("a partial frame preceded the error: {other:?}"),
    }

    // Reads on the degraded table still serve, with full results.
    let reply = client.query("SELECT id, name FROM people").unwrap();
    assert_eq!(
        reply.rows,
        vec![vec![Value::Int64(1), Value::Utf8("ada".into())]]
    );

    // resume_writes re-arms the table; the wire accepts appends again.
    dsess.resume_writes(Some("people")).unwrap();
    client
        .query("INSERT INTO people VALUES (4, 'grace')")
        .unwrap();
    let reply = client.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(reply.rows, vec![vec![Value::Int64(2)]]);
    let report = server.shutdown();
    assert_eq!(report.cancelled, 0);
}
