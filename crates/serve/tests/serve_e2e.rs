//! End-to-end service tests: full DDL/INSERT/SELECT round trips over the
//! wire, concurrent clients, and server metrics exposition.

use std::time::Duration;

use idf_engine::session::Session;
use idf_engine::types::{DataType, Value};
use idf_serve::{Client, ServeConfig, Server};

fn serve() -> (Server, Session) {
    let session = Session::new();
    let server = Server::bind(session.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    (server, session)
}

#[test]
fn ddl_insert_select_roundtrip_over_the_wire() {
    let (server, _session) = serve();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
        .query("CREATE TABLE events (id BIGINT, name VARCHAR, score DOUBLE, at TIMESTAMP)")
        .unwrap();
    client
        .query(
            "INSERT INTO events VALUES \
             (1, 'ada', 0.5, 1000), (2, 'bob', 1.5, 2000), (1, NULL, 2.5, 3000)",
        )
        .unwrap();
    let reply = client
        .query("SELECT id, name, score, at FROM events WHERE id = 1 ORDER BY at")
        .unwrap();
    assert_eq!(reply.fields.len(), 4);
    assert_eq!(reply.fields[0].name, "id");
    assert_eq!(reply.fields[0].data_type, DataType::Int64);
    assert_eq!(reply.fields[3].data_type, DataType::Timestamp);
    assert_eq!(
        reply.rows,
        vec![
            vec![
                Value::Int64(1),
                Value::Utf8("ada".into()),
                Value::Float64(0.5),
                Value::Timestamp(1000),
            ],
            vec![
                Value::Int64(1),
                Value::Null,
                Value::Float64(2.5),
                Value::Timestamp(3000),
            ],
        ]
    );
    // A join through the same wire connection.
    client
        .query("CREATE TABLE tags (event_id BIGINT, tag VARCHAR)")
        .unwrap();
    client
        .query("INSERT INTO tags VALUES (1, 'hot'), (2, 'cold')")
        .unwrap();
    let reply = client
        .query(
            "SELECT e.name, t.tag FROM events e JOIN tags t ON e.id = t.event_id \
             WHERE t.tag = 'cold'",
        )
        .unwrap();
    assert_eq!(
        reply.rows,
        vec![vec![Value::Utf8("bob".into()), Value::Utf8("cold".into())]]
    );
    let report = server.shutdown();
    assert_eq!(report.cancelled, 0);
}

#[test]
fn result_streams_span_multiple_rows_frames() {
    let (server, _session) = serve();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.query("CREATE TABLE wide (id BIGINT)").unwrap();
    // More rows than ROWS_PER_FRAME (1024) so the stream has to slice.
    for batch in 0..5 {
        let values: Vec<String> = (0..600).map(|i| format!("({})", batch * 600 + i)).collect();
        client
            .query(&format!("INSERT INTO wide VALUES {}", values.join(", ")))
            .unwrap();
    }
    let reply = client.query("SELECT id FROM wide ORDER BY id").unwrap();
    assert_eq!(reply.rows.len(), 3000);
    assert_eq!(reply.rows[0], vec![Value::Int64(0)]);
    assert_eq!(reply.rows[2999], vec![Value::Int64(2999)]);
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_updatable_table() {
    let (server, _session) = serve();
    let addr = server.local_addr();
    {
        let mut client = Client::connect(addr, "setup").unwrap();
        client
            .query("CREATE TABLE counters (id BIGINT, v BIGINT)")
            .unwrap();
    }
    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, format!("writer-{w}")).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for i in 0..25 {
                    client
                        .query(&format!("INSERT INTO counters VALUES ({w}, {i})"))
                        .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, format!("reader-{r}")).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for _ in 0..25 {
                    // Any consistent snapshot is fine; the query must
                    // simply never fail.
                    client.query("SELECT * FROM counters").unwrap();
                }
            })
        })
        .collect();
    for handle in writers.into_iter().chain(readers) {
        handle.join().unwrap();
    }
    let mut client = Client::connect(addr, "check").unwrap();
    let reply = client.query("SELECT * FROM counters").unwrap();
    assert_eq!(reply.rows.len(), 100);
    let report = server.shutdown();
    assert_eq!(report.cancelled, 0);
}

#[cfg(feature = "obs")]
#[test]
fn server_metrics_reach_the_prometheus_exposition() {
    let (server, session) = serve();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client.query("CREATE TABLE m (id BIGINT)").unwrap();
    client.query("SELECT * FROM m").unwrap();
    let text = session.metrics_text();
    for name in [
        "idf_server_connections_total",
        "idf_server_connections_open",
        "idf_server_in_flight",
        "idf_server_queue_depth",
        "idf_server_rejected_busy_total",
        "idf_server_rejected_quota_total",
        "idf_server_drain_ns",
    ] {
        assert!(text.contains(name), "missing {name} in exposition");
    }
    drop(client);
    server.shutdown();
    // Drain time is recorded (count is global and monotonic, so only
    // assert presence of at least our own observation).
    let after = session.metrics_text();
    assert!(after.contains("idf_server_drain_ns"));
}
