//! Wire-protocol fuzz/abuse suite: hostile bytes, oversized payloads,
//! and mid-stream disconnects must never panic the server, and every
//! abuse round must leave the memory governor drained back to zero.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use idf_durable::codec;
use idf_engine::config::EngineConfig;
use idf_engine::query::QueryContext;
use idf_engine::session::Session;
use idf_serve::wire::{self, Response};
use idf_serve::{Client, ClientError, ErrorCode, ServeConfig, Server, MAX_SQL_BYTES};

const BUDGET: usize = 64 << 20;

/// A session with a memory governor and a small seeded table.
fn serve() -> (Server, Session) {
    let config = EngineConfig {
        total_memory_limit: Some(BUDGET),
        ..EngineConfig::default()
    };
    let session = Session::with_config(config);
    session
        .sql("CREATE TABLE kv (id BIGINT, name VARCHAR)")
        .unwrap();
    session
        .sql("INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    let serve_config = ServeConfig {
        workers: 2,
        admission_wait: Duration::from_millis(30),
        drain_deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = Server::bind(session.clone(), "127.0.0.1:0", serve_config).unwrap();
    (server, session)
}

/// Every round must return the governor to zero: queries release all
/// conservative-peak bytes when their contexts drop.
fn assert_governor_zero(session: &Session) {
    let governor = session.memory_governor().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while governor.used() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(governor.used(), 0, "governor leaked bytes after abuse");
}

/// The server is alive iff a fresh connection can run a real query.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.local_addr(), "probe").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = client.query("SELECT name FROM kv WHERE id = 2").unwrap();
    assert_eq!(reply.rows.len(), 1);
}

#[test]
fn hostile_frames_never_panic_the_server() {
    let (server, session) = serve();
    let addr = server.local_addr();

    // Torn header: fewer than 8 header bytes, then close.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    drop(s);

    // Torn body: header claims 100 bytes, only 5 arrive.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&0u32.to_le_bytes()).unwrap();
    s.write_all(b"tiny!").unwrap();
    drop(s);

    // Bad CRC on an otherwise valid frame: typed BadRequest, then close.
    let mut s = TcpStream::connect(addr).unwrap();
    let body = wire::encode_query("abuse", "SELECT * FROM kv").unwrap();
    let mut framed = codec::frame(&body).unwrap();
    framed[4] ^= 0xff;
    s.write_all(&framed).unwrap();
    let resp = wire::read_frame(&mut s, wire::MAX_RESPONSE_FRAME)
        .unwrap()
        .expect("server should answer a CRC mismatch before closing");
    match wire::decode_response(&resp).unwrap() {
        Response::Error(frame) => assert_eq!(frame.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert!(
        wire::read_frame(&mut s, wire::MAX_RESPONSE_FRAME)
            .unwrap()
            .is_none(),
        "connection must close after a framing violation"
    );

    // Oversized length prefix: rejected before any allocation.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.write_all(&0u32.to_le_bytes()).unwrap();
    let resp = wire::read_frame(&mut s, wire::MAX_RESPONSE_FRAME)
        .unwrap()
        .expect("server should answer an oversized prefix before closing");
    match wire::decode_response(&resp).unwrap() {
        Response::Error(frame) => assert_eq!(frame.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // Unknown message tag in a well-framed body.
    let mut s = TcpStream::connect(addr).unwrap();
    let framed = codec::frame(&[42u8, 1, 2, 3]).unwrap();
    s.write_all(&framed).unwrap();
    let resp = wire::read_frame(&mut s, wire::MAX_RESPONSE_FRAME)
        .unwrap()
        .expect("server should answer an unknown tag");
    match wire::decode_response(&resp).unwrap() {
        Response::Error(frame) => assert_eq!(frame.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    assert_still_serving(&server);
    assert_governor_zero(&session);
    server.shutdown();
}

#[test]
fn empty_and_multi_statement_sql_get_typed_errors() {
    let (server, session) = serve();
    let mut client = Client::connect(server.local_addr(), "abuse").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for sql in ["", "   ", "SELECT * FROM kv; SELECT * FROM kv", ";;;"] {
        match client.query(sql) {
            Err(ClientError::Server(frame)) => {
                assert_eq!(frame.code, ErrorCode::QueryFailed, "sql {sql:?}: {frame}")
            }
            other => panic!("sql {sql:?}: expected a typed error frame, got {other:?}"),
        }
    }
    // The connection survives well-framed bad SQL.
    let reply = client.query("SELECT id FROM kv WHERE id = 1").unwrap();
    assert_eq!(reply.rows.len(), 1);
    assert_governor_zero(&session);
    server.shutdown();
}

#[test]
fn oversized_sql_is_rejected_by_both_ends() {
    let (server, session) = serve();
    // Client-side: encode refuses to stage the frame at all.
    let mut client = Client::connect(server.local_addr(), "abuse").unwrap();
    let big = format!("SELECT * FROM kv -- {}", "x".repeat(MAX_SQL_BYTES));
    match client.query(&big) {
        Err(ClientError::Transport(err)) => {
            assert!(err.to_string().contains("wire cap"), "{err}")
        }
        other => panic!("expected a client-side cap error, got {other:?}"),
    }
    // Server-side: hand-craft the frame a conforming client refuses to
    // send. The body fits the request frame cap; the SQL inside is over
    // the SQL cap, so the server answers SqlTooLarge and keeps serving
    // this same connection.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut body = vec![1u8];
    codec::put_bytes(&mut body, b"abuse");
    codec::put_bytes(&mut body, "y".repeat(MAX_SQL_BYTES + 1).as_bytes());
    s.write_all(&codec::frame(&body).unwrap()).unwrap();
    let resp = wire::read_frame(&mut s, wire::MAX_RESPONSE_FRAME)
        .unwrap()
        .expect("server should answer SqlTooLarge");
    match wire::decode_response(&resp).unwrap() {
        Response::Error(frame) => assert_eq!(frame.code, ErrorCode::SqlTooLarge),
        other => panic!("expected SqlTooLarge, got {other:?}"),
    }
    let ok = wire::encode_query("abuse", "SELECT * FROM kv").unwrap();
    s.write_all(&codec::frame(&ok).unwrap()).unwrap();
    let resp = wire::read_frame(&mut s, wire::MAX_RESPONSE_FRAME)
        .unwrap()
        .expect("connection must survive an oversized statement");
    assert!(matches!(
        wire::decode_response(&resp).unwrap(),
        Response::Schema(_)
    ));
    assert_governor_zero(&session);
    server.shutdown();
}

#[test]
fn disconnect_mid_result_stream_leaks_nothing() {
    let (server, session) = serve();
    // A result wide enough to span several Rows frames.
    {
        let mut client = Client::connect(server.local_addr(), "loader").unwrap();
        let values: Vec<String> = (1000..1400).map(|i| format!("({i}, 'row{i}')")).collect();
        for chunk in values.chunks(100) {
            client
                .query(&format!("INSERT INTO kv VALUES {}", chunk.join(", ")))
                .unwrap();
        }
    }
    for _ in 0..8 {
        let mut client = Client::connect(server.local_addr(), "abuse").unwrap();
        let body = wire::encode_query("abuse", "SELECT * FROM kv").unwrap();
        client.send_raw(&codec::frame(&body).unwrap()).unwrap();
        // Hang up without reading a single response frame.
        drop(client);
    }
    assert_still_serving(&server);
    assert_governor_zero(&session);
    server.shutdown();
}

#[test]
fn saturated_governor_yields_typed_server_busy() {
    let (server, session) = serve();
    let governor = session.memory_governor().unwrap();
    // Park the entire byte budget on an external context: admission must
    // hold queries, then reject with ServerBusy — never panic, never
    // stream a partial result.
    let hog = QueryContext::builder().governor(governor.clone()).build();
    hog.charge_memory(BUDGET).unwrap();
    assert_eq!(governor.used(), BUDGET);
    let mut client = Client::connect(server.local_addr(), "abuse").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.query("SELECT * FROM kv") {
        Err(ClientError::Server(frame)) => {
            assert_eq!(frame.code, ErrorCode::ServerBusy, "{frame}")
        }
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    // Releasing the pressure re-admits the same connection's queries.
    drop(hog);
    assert_eq!(governor.used(), 0);
    let reply = client.query("SELECT * FROM kv WHERE id = 3").unwrap();
    assert_eq!(reply.rows.len(), 1);
    assert_governor_zero(&session);
    server.shutdown();
}
